//! Structured event sink: a bounded ring of typed events.
//!
//! The flagship stream is the **DP budget ledger**: `kamino-dp` records
//! every σ calibration and every composed ε/δ spend here, tagged with the
//! mechanism id (`m1_histogram`, `m2_dpsgd`, `m3_weights`) so a scrape or
//! trace dump shows exactly where the privacy budget went. Events carry a
//! [`crate::clock`] timestamp and a process-local sequence number; neither
//! ever reaches a committed artifact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock;

/// A typed observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A mechanism's noise multiplier was calibrated against its share of
    /// the global budget.
    BudgetCalibration {
        /// Mechanism id (`m1_histogram`, `m2_dpsgd`, `m3_weights`).
        mechanism: &'static str,
        /// Calibrated noise multiplier σ.
        sigma: f64,
        /// The ε share this calibration targeted.
        epsilon_share: f64,
    },
    /// The planner finalized a plan: the composed spend across all
    /// mechanisms under RDP composition.
    BudgetSpend {
        /// Mechanism id, or `composed` for the plan total.
        mechanism: &'static str,
        /// Noise multiplier in force for this mechanism.
        sigma: f64,
        /// Composed ε achieved by the full plan.
        composed_epsilon: f64,
        /// The δ the ε conversion was taken at.
        delta: f64,
    },
    /// A pipeline phase finished (mirrors the span stream for consumers
    /// that only read events).
    Phase {
        /// Phase name (`fit.training`, `sample.mcmc`, ...).
        name: &'static str,
        /// Wall duration in nanoseconds.
        dur_ns: u64,
    },
    /// Free-form marker.
    Marker {
        /// What happened.
        name: String,
    },
    /// The serving layer replayed its durable fit ledger at boot.
    LedgerReplay {
        /// Intact records replayed.
        records: u64,
        /// Intents with no commit/abort — fits the process died inside.
        dangling: u64,
        /// Σ budgeted ε across every intent (∞ when any fit was
        /// non-private); the durable upper bound on spend.
        spent_epsilon: f64,
    },
}

impl Event {
    /// Stable lowercase tag for rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::BudgetCalibration { .. } => "budget_calibration",
            Event::BudgetSpend { .. } => "budget_spend",
            Event::Phase { .. } => "phase",
            Event::Marker { .. } => "marker",
            Event::LedgerReplay { .. } => "ledger_replay",
        }
    }
}

/// An event plus its ring metadata.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Process-local monotone sequence number.
    pub seq: u64,
    /// [`clock`] timestamp, nanoseconds.
    pub ts_ns: u64,
    /// The event payload.
    pub event: Event,
}

/// Bounded event ring (oldest dropped on overflow).
#[derive(Debug)]
pub(crate) struct EventRing {
    ring: Mutex<VecDeque<EventRecord>>,
    cap: usize,
    next_seq: AtomicU64,
}

impl EventRing {
    pub(crate) fn new(cap: usize) -> Self {
        EventRing {
            ring: Mutex::new(VecDeque::new()),
            cap,
            next_seq: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, event: Event) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let rec = EventRecord {
            seq,
            ts_ns: clock::now_nanos(),
            event,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    pub(crate) fn snapshot(&self) -> Vec<EventRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_sequences() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Event::Phase {
                name: "p",
                dur_ns: i,
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(snap[0].event.tag(), "phase");
    }
}
