//! `kamino-obs`: observability for the Kamino pipeline, strictly off the
//! determinism contract.
//!
//! The crate provides four pieces, all pure-std:
//!
//! - [`clock`] — the workspace's **single wall-clock choke point**; every
//!   non-test clock read routes through it (enforced by `kamino-lint`'s
//!   `bare_instant` rule).
//! - [`metrics`] — a lock-cheap registry of counters, gauges and
//!   fixed-bucket latency histograms (p50/p95/p99 readout), rendered as
//!   Prometheus text exposition.
//! - [`span`] — RAII span guards with per-thread parent/child nesting,
//!   collected into a bounded ring.
//! - [`events`] — a bounded ring of typed events, most importantly the
//!   **DP budget ledger** (`kamino-dp`'s σ calibrations and composed ε/δ
//!   spends, per mechanism).
//!
//! Everything hangs off an [`ObsHandle`]. The handle is clone-cheap and
//! **disabled by default**: a disabled handle never reads the clock,
//! never allocates, and never changes library behavior, which is how
//! instrumented code stays byte-identical to uninstrumented code.
//! Exporters ([`ObsHandle::render_prometheus`],
//! [`ObsHandle::chrome_trace_json`]) only ever run on explicit request —
//! no timestamp or counter can leak into snapshots or committed
//! artifacts.
//!
//! ```
//! let obs = kamino_obs::ObsHandle::enabled();
//! {
//!     let mut span = obs.span("fit.training");
//!     span.arg("epochs", "3");
//! } // span recorded on drop
//! obs.counter("kamino_fits_total", &[]).inc();
//! let trace_json = obs.chrome_trace_json();
//! assert!(trace_json.contains("fit.training"));
//! assert!(obs.render_prometheus().contains("kamino_fits_total 1"));
//!
//! let off = kamino_obs::ObsHandle::disabled();
//! assert!(!off.span("never").is_active()); // inert: no clock, no alloc
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod events;
pub mod metrics;
pub mod span;
pub mod trace;

pub use events::{Event, EventRecord};
pub use span::SpanRecord;

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use events::EventRing;
use metrics::{Counter, Gauge, Histo, Registry};
use span::{SpanGuard, SpanSink};

/// Default capacity of the finished-span ring.
const DEFAULT_SPAN_CAP: usize = 8192;
/// Default capacity of the event ring.
const DEFAULT_EVENT_CAP: usize = 1024;

#[derive(Debug)]
struct Inner {
    registry: Registry,
    spans: Arc<SpanSink>,
    events: EventRing,
}

/// Clone-cheap observability handle; `None` inside means disabled.
///
/// Thread it through configuration (`KaminoConfig::obs`,
/// `ServeConfig::obs`); never encode it into snapshots or hashes.
#[derive(Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.inner.is_some() {
            "ObsHandle(enabled)"
        } else {
            "ObsHandle(disabled)"
        })
    }
}

/// Observability is deliberately invisible to configuration equality:
/// two configs that differ only in their obs handle describe the same
/// deterministic run.
impl PartialEq for ObsHandle {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl ObsHandle {
    /// A disabled handle: every operation is an inert no-op.
    pub fn disabled() -> Self {
        ObsHandle { inner: None }
    }

    /// An enabled handle with default ring capacities.
    pub fn enabled() -> Self {
        Self::with_caps(DEFAULT_SPAN_CAP, DEFAULT_EVENT_CAP)
    }

    /// An enabled handle with explicit span/event ring capacities.
    pub fn with_caps(span_cap: usize, event_cap: usize) -> Self {
        ObsHandle {
            inner: Some(Arc::new(Inner {
                registry: Registry::default(),
                spans: Arc::new(SpanSink::new(span_cap.max(1))),
                events: EventRing::new(event_cap.max(1)),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it records itself when the returned guard drops.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard::open(Arc::clone(&inner.spans), name.into()),
            None => SpanGuard::inert(),
        }
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, labels),
            None => Counter::default(),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, labels),
            None => Gauge::default(),
        }
    }

    /// Get or register a histogram with the given finite bucket bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histo {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, labels, bounds),
            None => Histo::default(),
        }
    }

    /// Record a typed event (budget ledger, phase, marker).
    pub fn event(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.events.push(event);
        }
    }

    /// Snapshot of the finished-span ring (oldest first).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.snapshot())
    }

    /// Snapshot of the event ring (oldest first).
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.snapshot())
    }

    /// Number of spans dropped because the ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans.dropped())
    }

    /// Render the metric registry as Prometheus text exposition.
    /// Empty string when disabled.
    pub fn render_prometheus(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |i| i.registry.render_prometheus())
    }

    /// Render spans + events as a chrome://tracing JSON document.
    pub fn chrome_trace_json(&self) -> String {
        trace::render_chrome_trace(&self.spans(), &self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.span("x").is_active());
        obs.counter("c", &[]).inc();
        obs.gauge("g", &[]).set(1.0);
        obs.histogram("h", &[], &[1.0]).observe(0.5);
        obs.event(Event::Marker { name: "m".into() });
        assert!(obs.spans().is_empty());
        assert!(obs.events().is_empty());
        assert_eq!(obs.render_prometheus(), "");
        assert_eq!(obs.chrome_trace_json(), obs.chrome_trace_json());
    }

    #[test]
    fn enabled_handle_round_trips_all_sinks() {
        let obs = ObsHandle::with_caps(4, 4);
        {
            let mut s = obs.span("phase");
            s.arg("n", "10");
        }
        obs.counter("kamino_total", &[("k", "v")]).add(3);
        obs.event(Event::BudgetCalibration {
            mechanism: "m2_dpsgd",
            sigma: 1.1,
            epsilon_share: 0.75,
        });
        assert_eq!(obs.spans().len(), 1);
        assert_eq!(obs.events().len(), 1);
        let prom = obs.render_prometheus();
        assert!(prom.contains("kamino_total{k=\"v\"} 3"));
        let trace = obs.chrome_trace_json();
        assert!(trace.contains("\"phase\""));
        assert!(trace.contains("budget_calibration"));
        // clones share the same sinks
        let clone = obs.clone();
        clone.counter("kamino_total", &[("k", "v")]).inc();
        assert!(obs.render_prometheus().contains("kamino_total{k=\"v\"} 4"));
    }
}
