//! Lock-cheap metric registry: counters, gauges, and fixed-bucket
//! histograms with quantile readout, rendered as Prometheus text
//! exposition.
//!
//! Registration takes the registry lock once and hands back an `Arc`'d
//! cell; every subsequent `inc`/`observe` is a plain atomic op. Families
//! and label sets live in `BTreeMap`s so the rendered exposition is
//! byte-stable for a given set of values.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency buckets in seconds, chosen to resolve p50/p95/p99 for
/// both sub-millisecond metadata routes and multi-second fit phases.
pub const LATENCY_BUCKETS_S: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter. No-op on a detached (disabled) handle.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when detached).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding an `f64` (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the gauge. No-op on a detached (disabled) handle.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when detached).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Fixed-bucket histogram: per-bucket atomic counts plus a running sum.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket (not cumulative).
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
    /// Total observation count.
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let bounds: Vec<f64> = bounds.to_vec();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the owning bucket. Observations in the overflow bucket
    /// clamp to the last finite bound; an empty histogram reads 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                cum += n;
                continue;
            }
            if (cum + n) as f64 >= target {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => return *self.bounds.last().unwrap_or(&0.0),
                };
                let frac = (target - cum as f64) / n as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cum += n;
        }
        *self.bounds.last().unwrap_or(&0.0)
    }

    /// Cumulative `(upper_bound, count)` pairs, ending with `+Inf`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }
}

/// A histogram handle (detached on disabled observability).
#[derive(Clone, Debug, Default)]
pub struct Histo(Option<Arc<Histogram>>);

impl Histo {
    /// Record one observation. No-op on a detached handle.
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Access the underlying histogram, when attached.
    pub fn inner(&self) -> Option<&Histogram> {
        self.0.as_deref()
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Default)]
struct Family {
    kind: &'static str,
    /// Keyed by the rendered label set (`{a="b"}`), which sorts stably.
    series: BTreeMap<String, Series>,
}

/// The metric registry. One lock guards the name → family map; the
/// returned handles bypass it entirely.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Render a label slice as a Prometheus label set, sorted by key for
/// byte-stable output. Empty labels render as an empty string.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Merge extra labels (e.g. `le`) into an existing rendered label set.
fn label_key_with(rendered: &str, extra: &str) -> String {
    if rendered.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &rendered[..rendered.len() - 1])
    }
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// Get or register a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = label_key(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind: "counter",
            ..Family::default()
        });
        if fam.kind != "counter" {
            return Counter::default();
        }
        let cell = fam
            .series
            .entry(key)
            .or_insert_with(|| Series::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Series::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter::default(),
        }
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = label_key(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind: "gauge",
            ..Family::default()
        });
        if fam.kind != "gauge" {
            return Gauge::default();
        }
        let cell = fam
            .series
            .entry(key)
            .or_insert_with(|| Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match cell {
            Series::Gauge(g) => Gauge(Some(Arc::clone(g))),
            _ => Gauge::default(),
        }
    }

    /// Get or register a histogram series with the given finite bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histo {
        let key = label_key(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind: "histogram",
            ..Family::default()
        });
        if fam.kind != "histogram" {
            return Histo::default();
        }
        let cell = fam
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new(bounds))));
        match cell {
            Series::Histogram(h) => Histo(Some(Arc::clone(h))),
            _ => Histo::default(),
        }
    }

    /// Render the whole registry as Prometheus text exposition
    /// (version 0.0.4): one `# TYPE` line per family, series in
    /// deterministic label order.
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.load(Ordering::Relaxed)));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{labels} {}\n",
                            fmt_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                        ));
                    }
                    Series::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = format!("le=\"{}\"", fmt_f64(bound));
                            let k = label_key_with(labels, &le);
                            out.push_str(&format!("{name}_bucket{k} {cum}\n"));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_f64(h.sum())));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_upper_inclusive() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5); // bucket 0 (le 1.0)
        h.observe(1.0); // bucket 0 (le is inclusive)
        h.observe(1.5); // bucket 1
        h.observe(9.0); // overflow
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 12.0).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![(1.0, 2), (2.0, 3), (f64::INFINITY, 4)]);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            h.observe(5.0);
        }
        for _ in 0..50 {
            h.observe(15.0);
        }
        // p50 sits at the boundary of the first bucket
        let p50 = h.quantile(0.5);
        assert!((0.0..=10.0).contains(&p50), "p50={p50}");
        // p99 lands inside the second bucket
        let p99 = h.quantile(0.99);
        assert!((10.0..=20.0).contains(&p99), "p99={p99}");
        // overflow observations clamp to the last finite bound
        let h2 = Histogram::new(&[1.0]);
        h2.observe(100.0);
        assert_eq!(h2.quantile(0.99), 1.0);
        // empty histogram reads zero
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn registry_renders_stable_prometheus_text() {
        let r = Registry::default();
        r.counter(
            "kamino_requests_total",
            &[("route", "/b"), ("status", "200")],
        )
        .inc();
        let c = r.counter(
            "kamino_requests_total",
            &[("status", "200"), ("route", "/a")],
        );
        c.add(2);
        r.gauge("kamino_up", &[]).set(1.0);
        r.histogram("kamino_latency_seconds", &[], &[0.1, 1.0])
            .observe(0.05);
        let text = r.render_prometheus();
        let expect = "# TYPE kamino_latency_seconds histogram\n\
                      kamino_latency_seconds_bucket{le=\"0.1\"} 1\n\
                      kamino_latency_seconds_bucket{le=\"1\"} 1\n\
                      kamino_latency_seconds_bucket{le=\"+Inf\"} 1\n\
                      kamino_latency_seconds_sum 0.05\n\
                      kamino_latency_seconds_count 1\n\
                      # TYPE kamino_requests_total counter\n\
                      kamino_requests_total{route=\"/a\",status=\"200\"} 2\n\
                      kamino_requests_total{route=\"/b\",status=\"200\"} 1\n\
                      # TYPE kamino_up gauge\n\
                      kamino_up 1\n";
        assert_eq!(text, expect);
        // re-registering an existing series returns the same cell
        assert_eq!(
            r.counter(
                "kamino_requests_total",
                &[("route", "/a"), ("status", "200")]
            )
            .get(),
            2
        );
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let r = Registry::default();
        r.counter("m", &[]).inc();
        let g = r.gauge("m", &[]);
        g.set(5.0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(r.counter("m", &[]).get(), 1);
    }
}
