//! RAII span guards with parent/child nesting.
//!
//! A span opens when [`crate::ObsHandle::span`] is called and closes when
//! the guard drops; the finished record lands in a bounded ring. Nesting
//! is tracked per thread: the span on top of the calling thread's stack
//! when a new span opens becomes its parent. A disabled handle returns an
//! inert guard — no clock read, no allocation, no thread-local traffic.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock;

/// A finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the process (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Span name (phase or route label).
    pub name: Cow<'static, str>,
    /// Small dense id of the thread that ran the span.
    pub tid: u64,
    /// Start, nanoseconds on the [`clock`] timeline.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Attached key/value arguments (e.g. `status`, `column`).
    pub args: Vec<(&'static str, String)>,
}

/// Bounded sink of finished spans (oldest dropped on overflow).
#[derive(Debug)]
pub(crate) struct SpanSink {
    ring: Mutex<VecDeque<SpanRecord>>,
    cap: usize,
    dropped: AtomicU64,
}

impl SpanSink {
    pub(crate) fn new(cap: usize) -> Self {
        SpanSink {
            ring: Mutex::new(VecDeque::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, rec: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense per-thread id, assigned on first span use.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span. Dropping it records the span.
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<SpanActive>,
}

#[derive(Debug)]
struct SpanActive {
    sink: Arc<SpanSink>,
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// An inert guard (disabled observability).
    pub(crate) fn inert() -> Self {
        SpanGuard { state: None }
    }

    pub(crate) fn open(sink: Arc<SpanSink>, name: Cow<'static, str>) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let tid = TID.with(|t| *t);
        let parent = OPEN.with(|open| {
            let mut open = open.borrow_mut();
            let parent = open.last().copied().unwrap_or(0);
            open.push(id);
            parent
        });
        SpanGuard {
            state: Some(SpanActive {
                sink,
                name,
                id,
                parent,
                tid,
                start_ns: clock::now_nanos(),
                args: Vec::new(),
            }),
        }
    }

    /// Attach a key/value argument (shows up under `args` in the trace).
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(s) = &mut self.state {
            s.args.push((key, value.into()));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        let end = clock::now_nanos();
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // pop up to and including this span; tolerates out-of-order
            // drops from moved guards without poisoning the stack
            if let Some(pos) = open.iter().rposition(|&id| id == s.id) {
                open.truncate(pos);
            }
        });
        s.sink.push(SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            tid: s.tid,
            start_ns: s.start_ns,
            dur_ns: end.saturating_sub(s.start_ns),
            args: s.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(sink: &Arc<SpanSink>, name: &'static str) -> SpanGuard {
        SpanGuard::open(Arc::clone(sink), Cow::Borrowed(name))
    }

    #[test]
    fn nesting_links_parent_to_child() {
        let sink = Arc::new(SpanSink::new(16));
        {
            let _outer = open(&sink, "outer");
            {
                let mut inner = open(&sink, "inner");
                inner.arg("k", "v");
            }
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.tid, outer.tid);
        assert_eq!(inner.args, vec![("k", "v".to_string())]);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn threads_interleave_without_cross_linking() {
        let sink = Arc::new(SpanSink::new(64));
        let mut roots = vec![];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    let _root = SpanGuard::open(Arc::clone(&sink), Cow::Borrowed("root"));
                    for _ in 0..3 {
                        let _child = SpanGuard::open(Arc::clone(&sink), Cow::Borrowed("child"));
                    }
                });
            }
        });
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 16);
        for s in spans.iter().filter(|s| s.name == "root") {
            assert_eq!(s.parent, 0);
            roots.push((s.id, s.tid));
        }
        // every child's parent is the root that ran on the same thread
        for s in spans.iter().filter(|s| s.name == "child") {
            let (root_id, root_tid) = *roots.iter().find(|(id, _)| *id == s.parent).unwrap();
            assert_eq!(root_id, s.parent);
            assert_eq!(root_tid, s.tid);
        }
        // four distinct threads, four distinct tids
        let mut tids: Vec<u64> = roots.iter().map(|(_, t)| *t).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let sink = Arc::new(SpanSink::new(2));
        for _ in 0..5 {
            let _s = open(&sink, "s");
        }
        assert_eq!(sink.snapshot().len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn inert_guard_records_nothing() {
        let mut g = SpanGuard::inert();
        g.arg("k", "v");
        assert!(!g.is_active());
        drop(g);
    }
}
