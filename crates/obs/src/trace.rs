//! chrome://tracing export.
//!
//! Renders the span ring (as `"X"` complete events) and the event ring
//! (as `"i"` instant events) into the Trace Event Format JSON that
//! `chrome://tracing` and Perfetto load directly. Timestamps are
//! microseconds on the [`crate::clock`] timeline; thread lanes come from
//! the spans' dense thread ids.

use crate::events::{Event, EventRecord};
use crate::span::SpanRecord;

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, (ns % 1_000))
}

fn span_json(s: &SpanRecord) -> String {
    let mut args = vec![
        format!("\"span_id\":{}", s.id),
        format!("\"parent\":{}", s.parent),
    ];
    for (k, v) in &s.args {
        args.push(format!("\"{}\":\"{}\"", esc(k), esc(v)));
    }
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
        esc(&s.name),
        micros(s.start_ns),
        micros(s.dur_ns),
        s.tid,
        args.join(",")
    )
}

fn event_json(r: &EventRecord) -> String {
    let detail = match &r.event {
        Event::BudgetCalibration {
            mechanism,
            sigma,
            epsilon_share,
        } => format!(
            "\"mechanism\":\"{mechanism}\",\"sigma\":{sigma},\"epsilon_share\":{epsilon_share}"
        ),
        Event::BudgetSpend {
            mechanism,
            sigma,
            composed_epsilon,
            delta,
        } => format!(
            "\"mechanism\":\"{mechanism}\",\"sigma\":{sigma},\"composed_epsilon\":{composed_epsilon},\"delta\":{delta}"
        ),
        Event::Phase { name, dur_ns } => {
            format!("\"phase\":\"{}\",\"dur_ns\":{dur_ns}", esc(name))
        }
        Event::Marker { name } => format!("\"marker\":\"{}\"", esc(name)),
        Event::LedgerReplay {
            records,
            dangling,
            spent_epsilon,
        } => format!(
            "\"records\":{records},\"dangling\":{dangling},\"spent_epsilon\":\"{spent_epsilon}\""
        ),
    };
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":0,\"s\":\"p\",\"args\":{{\"seq\":{},{detail}}}}}",
        r.event.tag(),
        micros(r.ts_ns),
        r.seq
    )
}

/// Render spans + events as a chrome://tracing JSON document.
pub fn render_chrome_trace(spans: &[SpanRecord], events: &[EventRecord]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(spans.len() + events.len() + 1);
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"kamino\"}}"
            .to_string(),
    );
    entries.extend(spans.iter().map(span_json));
    entries.extend(events.iter().map(event_json));
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        entries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(id: u64, parent: u64, name: &'static str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            tid: 1,
            start_ns: 1_500,
            dur_ns: 2_250,
            args: vec![("status", "200".into())],
        }
    }

    /// A tiny structural JSON validator: balanced containers outside
    /// strings, no trailing garbage. Enough to catch malformed output
    /// without a JSON dependency.
    fn assert_balanced_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        for c in s.trim().chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string in {s}");
        assert_eq!(depth, 0, "unbalanced containers in {s}");
    }

    #[test]
    fn trace_document_is_valid_and_complete() {
        let spans = vec![span(1, 0, "fit"), span(2, 1, "fit.training")];
        let events = vec![EventRecord {
            seq: 0,
            ts_ns: 3_000,
            event: Event::BudgetSpend {
                mechanism: "composed",
                sigma: 1.5,
                composed_epsilon: 0.98,
                delta: 1e-6,
            },
        }];
        let doc = render_chrome_trace(&spans, &events);
        assert_balanced_json(&doc);
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"fit.training\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.250"));
        assert!(doc.contains("\"name\":\"budget_spend\",\"ph\":\"i\""));
        assert!(doc.contains("\"composed_epsilon\":0.98"));
    }

    #[test]
    fn names_are_escaped() {
        let mut s = span(1, 0, "x");
        s.name = Cow::Owned("a\"b\\c\nd".to_string());
        let doc = render_chrome_trace(&[s], &[]);
        assert_balanced_json(&doc);
        assert!(doc.contains("a\\\"b\\\\c\\nd"));
    }
}
