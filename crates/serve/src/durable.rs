//! The durability layer behind `--model-dir`: a write-ahead budget
//! ledger, an atomic file-install protocol, a committed-model manifest,
//! and the quarantine policy for anything on disk that fails its checks.
//!
//! ## Why a ledger
//!
//! The privacy budget is spent *inside* a fit job — by the time
//! `fit_kamino` returns, the Gaussian mechanisms of M1/M2/M3 have
//! already consumed ε/δ against the private input. A crash between
//! "mechanisms ran" and "model persisted" must therefore never erase the
//! record of that spend: the composition guarantee (PAPER.md §5,
//! Theorem 1) is an invariant over *attempted* runs, not successful
//! ones. The ledger records a [`LedgerRecord::FitIntent`] — budgeted ε,
//! δ and the config's stable hash — durably (fsync'd) *before* any
//! mechanism executes, and a `FitCommit`/`FitAbort` after. On boot the
//! ledger is replayed: an intent with no matching commit or abort is a
//! crashed fit, surfaced as a `failed (crashed)` model whose budgeted ε
//! counts as spent. ε is never double-counted (each intent is counted
//! once, keyed by model id) and never forgotten (the intent is on disk
//! before the spend).
//!
//! ## Ledger format (`ledger.kamlog`)
//!
//! An append-only sequence of CRC-framed records:
//!
//! ```text
//! ┌──────────────┬──────────────┬──────────────┐
//! │ len (u32 LE) │ crc (u32 LE) │ payload      │
//! └──────────────┴──────────────┴──────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. Replay stops at the first
//! frame that is short, oversized or fails its CRC — a torn tail from a
//! crash mid-append — and truncates the file back to the last complete
//! frame, so the next append starts on a clean boundary.
//!
//! ## Atomic installs and the manifest
//!
//! [`write_atomic`] is the only sanctioned way to install a file in the
//! model directory: write a uniquely-named tmp sibling, `fsync` it,
//! `rename` over the target, then `fsync` the directory so the rename
//! itself is durable. A versioned [`Manifest`] (`MANIFEST` in the model
//! directory, installed via the same protocol) lists every committed
//! model id and snapshot file name; boot cross-checks it and warns
//! loudly about committed models whose snapshot has gone missing.
//!
//! Anything that fails its checks at boot — a snapshot with a bad CRC, a
//! stale tmp file from a crashed install, an unreadable manifest — is
//! [`quarantine`]d: renamed to `*.quarantine`, logged, and never loaded.
//! Boot continues; corruption of one file is not an outage.
//!
//! ## Fault injection
//!
//! The [`chaos`] module gives the crash-recovery harness syscall-level
//! fault points: `KAMINO_CHAOS_FAULT=<point>[:N]` aborts the process
//! (SIGKILL-equivalent) at the `N`-th crossing of a named point, and
//! `KAMINO_CHAOS_DISK_FULL=1` makes [`write_atomic`] fail like a full
//! disk. Both are inert unless the environment variable is set.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use kamino_data::wire::{crc32, ByteReader, ByteWriter};

/// The ledger's file name inside `--model-dir`.
pub const LEDGER_NAME: &str = "ledger.kamlog";

/// The manifest's file name inside `--model-dir`.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"KAMMANF\0";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Largest ledger frame replay will accept. Real records are tens of
/// bytes; anything bigger is torn or foreign bytes, not a record.
const MAX_FRAME: u32 = 4096;

/// Why a fit that recorded an intent did not commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The fit pipeline panicked (infeasible budget, bad input…).
    Panic,
    /// Boot-time recovery: the process died with the intent dangling.
    Crash,
}

impl AbortReason {
    fn to_wire(self) -> u8 {
        match self {
            AbortReason::Panic => 0,
            AbortReason::Crash => 1,
        }
    }

    fn from_wire(b: u8) -> Option<AbortReason> {
        match b {
            0 => Some(AbortReason::Panic),
            1 => Some(AbortReason::Crash),
            _ => None,
        }
    }
}

/// One ledger record.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// Appended — and fsync'd — before any DP mechanism of the fit runs.
    FitIntent {
        /// The model slot the fit will fill.
        model_id: u64,
        /// Budgeted ε (`f64::INFINITY` for non-private fits).
        epsilon: f64,
        /// Budgeted δ.
        delta: f64,
        /// [`kamino_core::KaminoConfig::stable_hash`] of the fit config.
        plan_hash: u64,
    },
    /// The fit finished and its model is installed.
    FitCommit {
        /// The model the intent announced.
        model_id: u64,
        /// ε actually achieved by the calibrated plan (≤ budgeted ε).
        achieved_epsilon: f64,
        /// [`kamino_dp::spend_fingerprint`] of the executed plan.
        fingerprint: u64,
    },
    /// The fit ended without a model; its budgeted ε stays spent.
    FitAbort {
        /// The model the intent announced.
        model_id: u64,
        /// Why it aborted.
        reason: AbortReason,
    },
}

const TAG_INTENT: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;

impl LedgerRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            LedgerRecord::FitIntent {
                model_id,
                epsilon,
                delta,
                plan_hash,
            } => {
                w.put_u8(TAG_INTENT);
                w.put_u64(*model_id);
                w.put_f64(*epsilon);
                w.put_f64(*delta);
                w.put_u64(*plan_hash);
            }
            LedgerRecord::FitCommit {
                model_id,
                achieved_epsilon,
                fingerprint,
            } => {
                w.put_u8(TAG_COMMIT);
                w.put_u64(*model_id);
                w.put_f64(*achieved_epsilon);
                w.put_u64(*fingerprint);
            }
            LedgerRecord::FitAbort { model_id, reason } => {
                w.put_u8(TAG_ABORT);
                w.put_u64(*model_id);
                w.put_u8(reason.to_wire());
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<LedgerRecord> {
        let mut r = ByteReader::new(payload);
        let rec = match r.u8().ok()? {
            TAG_INTENT => LedgerRecord::FitIntent {
                model_id: r.u64().ok()?,
                epsilon: r.f64().ok()?,
                delta: r.f64().ok()?,
                plan_hash: r.u64().ok()?,
            },
            TAG_COMMIT => LedgerRecord::FitCommit {
                model_id: r.u64().ok()?,
                achieved_epsilon: r.f64().ok()?,
                fingerprint: r.u64().ok()?,
            },
            TAG_ABORT => LedgerRecord::FitAbort {
                model_id: r.u64().ok()?,
                reason: AbortReason::from_wire(r.u8().ok()?)?,
            },
            _ => return None,
        };
        r.is_exhausted().then_some(rec)
    }

    /// The model id every record carries.
    pub fn model_id(&self) -> u64 {
        match self {
            LedgerRecord::FitIntent { model_id, .. }
            | LedgerRecord::FitCommit { model_id, .. }
            | LedgerRecord::FitAbort { model_id, .. } => *model_id,
        }
    }
}

/// What replaying the ledger at boot learned.
#[derive(Debug, Default)]
pub struct LedgerReplay {
    /// Every intact record, in append order.
    pub records: Vec<LedgerRecord>,
    /// Bytes of torn tail truncated away (0 on a clean file).
    pub truncated_bytes: u64,
    /// Intents with no matching commit or abort: fits the process died
    /// inside. Their budgeted ε is spent.
    pub dangling: Vec<(u64, f64)>,
    /// Σ budgeted ε over every intent — a durable upper bound on all ε
    /// ever spent against this model directory (never an undercount).
    pub spent_epsilon: f64,
    /// Largest model id any record mentions (0 when none).
    pub max_model_id: u64,
}

/// The append-only write-ahead ledger. One instance per server; appends
/// are serialized by the registry's mutex around it.
pub struct Ledger {
    file: File,
}

impl Ledger {
    /// Opens (creating if absent) and replays `dir/ledger.kamlog`,
    /// truncating any torn tail so the next append lands on a frame
    /// boundary.
    pub fn open(dir: &Path) -> io::Result<(Ledger, LedgerReplay)> {
        let path = dir.join(LEDGER_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut replay = LedgerReplay::default();
        let mut off = 0usize;
        while off < bytes.len() {
            let Some(head) = bytes.get(off..off + 8) else {
                break;
            };
            let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
            let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
            if len > MAX_FRAME {
                break;
            }
            let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let Some(rec) = LedgerRecord::decode(payload) else {
                break;
            };
            replay.max_model_id = replay.max_model_id.max(rec.model_id());
            replay.records.push(rec);
            off += 8 + len as usize;
        }
        if off < bytes.len() {
            replay.truncated_bytes = (bytes.len() - off) as u64;
            file.set_len(off as u64)?;
            file.sync_all()?;
        }
        // resolve intents against later commits/aborts
        let mut open: Vec<(u64, f64)> = Vec::new();
        for rec in &replay.records {
            match rec {
                LedgerRecord::FitIntent {
                    model_id, epsilon, ..
                } => {
                    replay.spent_epsilon += epsilon;
                    open.push((*model_id, *epsilon));
                }
                LedgerRecord::FitCommit { model_id, .. }
                | LedgerRecord::FitAbort { model_id, .. } => {
                    if let Some(i) = open.iter().position(|(id, _)| id == model_id) {
                        open.remove(i);
                    }
                }
            }
        }
        replay.dangling = open;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        fsync_dir(dir)?;
        Ok((Ledger { file }, replay))
    }

    /// Appends one record durably: the frame is written and fsync'd
    /// before this returns. Chaos points: `ledger.pre_append` (die with
    /// nothing written), `ledger.torn_append` (die after half a frame),
    /// `ledger.post_append` (die with the record durable).
    pub fn append(&mut self, rec: &LedgerRecord) -> io::Result<()> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        chaos::fault_point("ledger.pre_append");
        if chaos::should_fire("ledger.torn_append") {
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_all();
            chaos::abort_now("ledger.torn_append");
        }
        self.file.write_all(&frame)?;
        self.file.sync_all()?;
        chaos::fault_point("ledger.post_append");
        Ok(())
    }
}

/// The committed-model manifest: every model id whose snapshot install
/// completed, with its snapshot file name. Rewritten atomically after
/// each commit; an unreadable manifest is quarantined at boot, not
/// fatal (snapshot files re-register from the directory scan).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `model id → snapshot file name`, sorted by id.
    pub entries: std::collections::BTreeMap<u64, String>,
}

impl Manifest {
    /// Serializes: magic, version, entry count, entries, trailing CRC of
    /// everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(&MANIFEST_MAGIC);
        w.put_u32(MANIFEST_VERSION);
        w.put_u32(self.entries.len() as u32);
        for (id, name) in &self.entries {
            w.put_u64(*id);
            w.put_str(name);
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Deserializes and CRC-verifies manifest bytes.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, String> {
        if bytes.len() < 4 {
            return Err("manifest shorter than its checksum".into());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crc32(body) != stored {
            return Err("manifest failed its CRC check".into());
        }
        let mut r = ByteReader::new(body);
        let magic = r.raw(8).map_err(|e| e.to_string())?;
        if magic != MANIFEST_MAGIC {
            return Err("not a Kamino manifest (bad magic)".into());
        }
        let version = r.u32().map_err(|e| e.to_string())?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"
            ));
        }
        let count = r.u32().map_err(|e| e.to_string())? as usize;
        let mut entries = std::collections::BTreeMap::new();
        for _ in 0..count {
            let id = r.u64().map_err(|e| e.to_string())?;
            let name = r.string().map_err(|e| e.to_string())?;
            entries.insert(id, name);
        }
        Ok(Manifest { entries })
    }

    /// Loads `dir/MANIFEST`. `Ok(None)` when none exists yet;
    /// `Err` when one exists but does not verify.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = dir.join(MANIFEST_NAME);
        match fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("reading manifest: {e}")),
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
        }
    }

    /// Atomically installs this manifest as `dir/MANIFEST`.
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        write_atomic(&self.encode(), &dir.join(MANIFEST_NAME))
    }
}

/// Atomically installs `bytes` at `path`: write a uniquely-named tmp
/// sibling, fsync it, rename over the target, fsync the parent
/// directory. A crash at any point leaves either the old file or the
/// new one — never a torn mix — plus at worst a stale tmp that boot
/// quarantines. Chaos points: `snapshot.pre_rename`,
/// `snapshot.post_rename`; `KAMINO_CHAOS_DISK_FULL=1` fails the write
/// up front like a full disk.
pub fn write_atomic(bytes: &[u8], path: &Path) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    if chaos::disk_full() {
        return Err(io::Error::other("disk full (chaos shim)"));
    }
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".into());
    tmp_name.push_str(&format!(".tmp-{}-{n}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let cleanup = |e: io::Error| {
        let _ = fs::remove_file(&tmp);
        e
    };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes).map_err(cleanup)?;
    f.sync_all().map_err(cleanup)?;
    drop(f);
    chaos::fault_point("snapshot.pre_rename");
    fs::rename(&tmp, path).map_err(cleanup)?;
    chaos::fault_point("snapshot.post_rename");
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Fsyncs a directory so completed renames/creates inside it survive a
/// crash.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Renames a failed file to `<name>.quarantine` (never loaded again,
/// kept for post-mortem). The suffix is appended, so quarantining is
/// idempotent-safe: a second failure of the same name targets the same
/// quarantine path and simply overwrites it.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let mut name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".into());
    name.push_str(".quarantine");
    let target = path.with_file_name(name);
    fs::rename(path, &target)?;
    Ok(target)
}

/// Whether a directory entry is a stale tmp file from a crashed
/// [`write_atomic`] install.
pub fn is_stale_tmp(path: &Path) -> bool {
    path.file_name()
        .and_then(|s| s.to_str())
        .is_some_and(|name| name.contains(".tmp-") && !name.ends_with(".quarantine"))
}

/// Process-abort fault injection for the crash-recovery harness.
///
/// `KAMINO_CHAOS_FAULT=<point>[:N]` arms exactly one named point; the
/// `N`-th time execution crosses it (default: the first), the process
/// aborts — the in-process equivalent of `kill -9` at that syscall
/// boundary. `KAMINO_CHAOS_DISK_FULL=1` makes [`write_atomic`] fail.
/// Unset variables make every hook inert and branch-predictable.
pub mod chaos {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    struct Armed {
        point: String,
        nth: u64,
    }

    fn armed() -> Option<&'static Armed> {
        static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
        ARMED
            .get_or_init(|| {
                let raw = std::env::var("KAMINO_CHAOS_FAULT").ok()?;
                let (point, nth) = match raw.split_once(':') {
                    Some((p, n)) => (p.to_string(), n.parse().unwrap_or(1)),
                    None => (raw, 1),
                };
                Some(Armed {
                    point,
                    nth: nth.max(1),
                })
            })
            .as_ref()
    }

    /// Whether the named point is armed and this crossing is the fatal
    /// one. Used by call sites that need to do damage (e.g. write half a
    /// frame) before [`abort_now`].
    pub fn should_fire(point: &str) -> bool {
        static CROSSINGS: AtomicU64 = AtomicU64::new(0);
        let Some(a) = armed() else { return false };
        if a.point != point {
            return false;
        }
        CROSSINGS.fetch_add(1, Ordering::AcqRel) + 1 == a.nth
    }

    /// Aborts the process like `kill -9` would: no unwinding, no
    /// destructors, no flushes.
    pub fn abort_now(point: &str) -> ! {
        eprintln!("kamino-chaos: aborting at fault point `{point}`");
        std::process::abort()
    }

    /// Dies here if the named fault point is armed for this crossing.
    pub fn fault_point(point: &str) {
        if should_fire(point) {
            abort_now(point);
        }
    }

    /// Whether the disk-full shim is on (`KAMINO_CHAOS_DISK_FULL=1`).
    pub fn disk_full() -> bool {
        static ON: OnceLock<bool> = OnceLock::new();
        *ON.get_or_init(|| {
            std::env::var("KAMINO_CHAOS_DISK_FULL").is_ok_and(|v| v == "1" || v == "true")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kamino-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn intent(id: u64, eps: f64) -> LedgerRecord {
        LedgerRecord::FitIntent {
            model_id: id,
            epsilon: eps,
            delta: 1e-6,
            plan_hash: 0xfeed,
        }
    }

    #[test]
    fn ledger_roundtrip_and_replay() {
        let dir = tmpdir("roundtrip");
        {
            let (mut ledger, replay) = Ledger::open(&dir).unwrap();
            assert!(replay.records.is_empty());
            ledger.append(&intent(1, 1.0)).unwrap();
            ledger
                .append(&LedgerRecord::FitCommit {
                    model_id: 1,
                    achieved_epsilon: 0.97,
                    fingerprint: 42,
                })
                .unwrap();
            ledger.append(&intent(2, 0.5)).unwrap();
        }
        let (_ledger, replay) = Ledger::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.dangling, vec![(2, 0.5)]);
        assert!((replay.spent_epsilon - 1.5).abs() < 1e-12);
        assert_eq!(replay.max_model_id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmpdir("torn");
        {
            let (mut ledger, _) = Ledger::open(&dir).unwrap();
            ledger.append(&intent(1, 1.0)).unwrap();
        }
        let path = dir.join(LEDGER_NAME);
        let clean_len = fs::metadata(&path).unwrap().len();
        // simulate a crash mid-append: garbage half-frame at the tail
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3]);
        fs::write(&path, &bytes).unwrap();
        let (mut ledger, replay) = Ledger::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.truncated_bytes, 7);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);
        // the next append lands on the clean boundary and replays whole
        ledger
            .append(&LedgerRecord::FitAbort {
                model_id: 1,
                reason: AbortReason::Crash,
            })
            .unwrap();
        drop(ledger);
        let (_ledger, replay) = Ledger::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.dangling.is_empty());
        assert!((replay.spent_epsilon - 1.0).abs() < 1e-12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_stops_replay_at_last_good_record() {
        let dir = tmpdir("corrupt");
        {
            let (mut ledger, _) = Ledger::open(&dir).unwrap();
            ledger.append(&intent(1, 1.0)).unwrap();
            ledger.append(&intent(2, 2.0)).unwrap();
        }
        let path = dir.join(LEDGER_NAME);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload bit in the second frame
        fs::write(&path, &bytes).unwrap();
        let (_ledger, replay) = Ledger::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(replay.dangling, vec![(1, 1.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_private_intents_replay_as_infinite_spend() {
        let dir = tmpdir("inf");
        {
            let (mut ledger, _) = Ledger::open(&dir).unwrap();
            ledger.append(&intent(1, f64::INFINITY)).unwrap();
        }
        let (_ledger, replay) = Ledger::open(&dir).unwrap();
        assert!(replay.spent_epsilon.is_infinite());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_corruption_detection() {
        let dir = tmpdir("manifest");
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let mut m = Manifest::default();
        m.entries.insert(3, "model-3.kamino".into());
        m.entries.insert(7, "model-7.kamino".into());
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m.clone()));
        // a flipped byte must fail the CRC, not decode garbage
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 0x55;
        fs::write(&path, &bytes).unwrap();
        assert!(Manifest::load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_installs_and_leaves_no_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("model-1.kamino");
        write_atomic(b"hello", &path).unwrap();
        write_atomic(b"world", &path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| is_stale_tmp(&e.path()))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_renames_with_suffix() {
        let dir = tmpdir("quarantine");
        let path = dir.join("model-1.kamino");
        fs::write(&path, b"garbage").unwrap();
        let target = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(target.exists());
        assert!(target
            .to_string_lossy()
            .ends_with("model-1.kamino.quarantine"));
        assert!(!is_stale_tmp(&target));
        assert!(is_stale_tmp(&dir.join("model-1.kamino.tmp-44-0")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_hooks_are_inert_without_env() {
        // the harness sets the env vars in *spawned* processes only, so
        // in-process tests must never trip them
        chaos::fault_point("ledger.pre_append");
        assert!(!chaos::should_fire("ledger.torn_append"));
        assert!(!chaos::disk_full());
    }
}
