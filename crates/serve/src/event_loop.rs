//! The readiness-driven connection engine behind [`crate::server`].
//!
//! One thread owns every socket. Connections live in a slab indexed by
//! epoll token (token 0 is the listener, token 1 the worker-completion
//! waker, tokens ≥ 2 are connections); each carries a generation counter
//! so a completion addressed to a connection that died and whose slot
//! was reused is dropped instead of corrupting a stranger's stream.
//!
//! Per connection the loop runs a small state machine:
//!
//! * **Idle** — buffering bytes and feeding them to the incremental
//!   HTTP parser ([`crate::http::try_parse`]); pipelined requests on one
//!   connection are served strictly in order.
//! * **AwaitWorker** — a job (snapshot persist) is on the worker queue;
//!   the matching [`Completion`] carries the response.
//! * **Streaming** — a chunked `/synthesize` response is in flight.
//!   Pooled batches are drained inline via `try_lock` (never blocking
//!   the loop); anything else — cold pools, lazy loads, misaligned batch
//!   sizes — is dispatched as a [`Job::Batch`] and written when the
//!   completion arrives. A high-water mark on the write buffer stops the
//!   loop from buffering a 10M-row response for a slow reader.
//!
//! Draining (`POST /shutdown`) deregisters the listener, closes idle
//! keep-alive connections, lets every in-flight response — including
//! chunked streams — run to completion, and returns once the slab is
//! empty; dropping the job sender then lets the workers finish queued
//! fits and exit.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

use kamino_obs::clock;
use kamino_obs::span::SpanGuard;

use crate::http::{self, Parse, Request};
use crate::json::Json;
use crate::pool::Format;
use crate::registry::{ModelSlot, PinGuard};
use crate::server::{
    self, Action, AppState, BatchOut, Completion, CompletionQueue, Job, Reply, StreamStart,
    IDLE_READ_TIMEOUT, WRITE_STALL_TIMEOUT,
};
use crate::sys;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// Poll timeout: bounds how stale timeout checks can get.
const POLL_TICK_MS: i32 = 250;

/// Stop generating response bytes for a connection once this much is
/// already buffered; resume when the peer drains it.
const HIGH_WATER: usize = 256 * 1024;

/// Stop reading from a connection once this much request data is
/// buffered un-parsed (a full head plus a full body plus slack).
const READ_CAP: usize = http::MAX_HEAD + http::MAX_BODY + 4096;

/// The in-flight request's observability: span + latency sample.
struct Inflight {
    span: SpanGuard,
    t0: u64,
    route: &'static str,
    method: String,
}

/// A chunked `/synthesize` response in flight.
struct Stream {
    slot: Arc<ModelSlot>,
    /// Keeps the model safe from eviction until the stream ends.
    _pin: PinGuard,
    remaining: usize,
    batch: usize,
    format: Format,
    /// Pre-rendered CSV header to emit right after the response head.
    csv_header: Option<String>,
    head_sent: bool,
    /// A worker batch is outstanding; the completion resumes the pump.
    awaiting: bool,
}

enum Phase {
    Idle,
    AwaitWorker,
    Streaming(Box<Stream>),
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    phase: Phase,
    /// Close once the buffered response bytes are flushed.
    close_after: bool,
    /// Peer half-closed its write side: finish responding, accept no
    /// new requests.
    read_closed: bool,
    /// Unrecoverable socket error: drop as soon as we see it.
    dead: bool,
    last_activity: u64,
    interest: sys::Interest,
    inflight: Option<Inflight>,
}

fn content_type(format: Format) -> &'static str {
    match format {
        Format::Csv => "text/csv",
        Format::Json => "application/x-ndjson",
    }
}

fn err_body(msg: &str) -> Vec<u8> {
    Json::obj([("error", Json::Str(msg.to_string()))])
        .to_string()
        .into_bytes()
}

/// Closes out the in-flight request's span and latency sample.
fn finish_inflight(c: &mut Conn, state: &AppState, status: &'static str) {
    if let Some(mut inflight) = c.inflight.take() {
        if inflight.span.is_active() {
            inflight.span.arg("status", status.to_string());
        }
        drop(inflight.span);
        server::observe_request(
            state,
            inflight.route,
            &inflight.method,
            status,
            clock::now_nanos().saturating_sub(inflight.t0),
        );
    }
    if !status.starts_with('2') {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Buffers an immediate response and finishes the request accounting.
fn send_reply(c: &mut Conn, state: &AppState, reply: Reply) {
    let retry_after = reply.retry_after.map(|secs| secs.to_string());
    let extra: Vec<(&str, &str)> = retry_after
        .as_deref()
        .map(|v| ("retry-after", v))
        .into_iter()
        .collect();
    let _ = http::write_response_extra(
        &mut c.write_buf,
        reply.status,
        reply.content_type,
        &reply.body,
        reply.close,
        &extra,
    );
    c.close_after |= reply.close;
    finish_inflight(c, state, reply.status);
}

/// Starts a chunked stream: the head (and CSV header) go out now when
/// the model's schema is already known, otherwise with the first worker
/// batch so load failures still get a clean JSON error status.
fn begin_stream(c: &mut Conn, start: StreamStart, close: bool) {
    c.close_after |= close;
    let mut s = Stream {
        slot: start.slot,
        _pin: start.pin,
        remaining: start.remaining,
        batch: start.batch,
        format: start.format,
        csv_header: start.csv_header.flatten(),
        head_sent: false,
        awaiting: false,
    };
    if start.meta_known {
        let _ = http::start_chunked(&mut c.write_buf, "200 OK", content_type(s.format));
        if let Some(h) = s.csv_header.take() {
            let _ = http::write_chunk(&mut c.write_buf, h.as_bytes());
        }
        s.head_sent = true;
    }
    c.phase = Phase::Streaming(Box::new(s));
}

/// Generates stream bytes until the request is satisfied, the write
/// buffer hits the high-water mark, or a worker has to take over.
fn pump(c: &mut Conn, token: u64, state: &Arc<AppState>, jobs: &mpsc::Sender<Job>) {
    let done = {
        let Phase::Streaming(s) = &mut c.phase else {
            return;
        };
        if s.awaiting {
            return;
        }
        while s.remaining > 0 && c.write_buf.len() < HIGH_WATER {
            let take = s.remaining.min(s.batch);
            let mut fast = false;
            // pooled fast path: a try_lock miss or a cold ring just means
            // a worker does it instead — the loop never blocks on a model
            if s.head_sent {
                if let Ok(mut guard) = s.slot.resident.try_lock() {
                    if let Some(r) = guard.as_mut() {
                        if r.pool.has_ready(take, s.format) {
                            if let Ok((text, rows, _hit)) =
                                r.pool.take_batch(&mut r.fitted, take, s.format)
                            {
                                s.slot
                                    .pool_depth
                                    .store(r.pool.depth() as u64, Ordering::Relaxed);
                                // speculation pauses while the worker
                                // queue is under pressure
                                let refill = !server::speculation_paused(state)
                                    && r.pool.wants_refill()
                                    && !s.slot.refill_queued.swap(true, Ordering::AcqRel);
                                drop(guard);
                                state.registry.pool_hits.fetch_add(1, Ordering::Relaxed);
                                state.metrics.add_rows(rows);
                                state.registry.touch(&s.slot);
                                let _ = http::write_chunk(&mut c.write_buf, text.as_bytes());
                                s.remaining -= take;
                                if refill {
                                    server::send_job(
                                        state,
                                        jobs,
                                        Job::Refill {
                                            slot: Arc::clone(&s.slot),
                                        },
                                    );
                                }
                                fast = true;
                            }
                        }
                    }
                }
            }
            if !fast {
                // never shed mid-stream: admission control happens in
                // dispatch; an admitted stream keeps its worker lane
                server::send_job(
                    state,
                    jobs,
                    Job::Batch {
                        token,
                        gen: c.gen,
                        slot: Arc::clone(&s.slot),
                        rows: take,
                        format: s.format,
                        need_header: !s.head_sent,
                    },
                );
                s.awaiting = true;
                return;
            }
        }
        s.remaining == 0
    };
    if done {
        let _ = http::finish_chunked(&mut c.write_buf);
        c.phase = Phase::Idle; // drops the pin
        finish_inflight(c, state, "200 OK");
    }
}

/// Applies one worker completion to its connection (dropped when the
/// connection died or was reused — the generation check).
fn apply_completion(conns: &mut [Option<Conn>], comp: Completion, state: &Arc<AppState>) {
    match comp {
        Completion::Batch { token, gen, result } => {
            let Some(c) = conn_for(conns, token, gen) else {
                return;
            };
            apply_batch(c, state, result);
        }
        Completion::Snapshot { token, gen, result } => {
            let Some(c) = conn_for(conns, token, gen) else {
                return;
            };
            if !matches!(c.phase, Phase::AwaitWorker) {
                return;
            }
            c.phase = Phase::Idle;
            let reply = match result {
                Ok(path) => Reply::json(
                    "200 OK",
                    Json::obj([
                        ("status", Json::Str("saved".into())),
                        ("path", Json::Str(path.display().to_string())),
                    ]),
                    c.close_after,
                ),
                Err((status, msg)) => Reply {
                    status,
                    content_type: "application/json",
                    body: err_body(&msg),
                    close: c.close_after,
                    retry_after: None,
                },
            };
            send_reply(c, state, reply);
        }
    }
}

fn conn_for(conns: &mut [Option<Conn>], token: u64, gen: u64) -> Option<&mut Conn> {
    let idx = usize::try_from(token.checked_sub(TOKEN_BASE)?).ok()?;
    let c = conns.get_mut(idx)?.as_mut()?;
    (c.gen == gen).then_some(c)
}

fn apply_batch(
    c: &mut Conn,
    state: &Arc<AppState>,
    result: Result<BatchOut, (&'static str, String)>,
) {
    enum Outcome {
        Continue,
        Truncated,
        Failed(&'static str, String, bool),
    }
    let outcome = {
        let Phase::Streaming(s) = &mut c.phase else {
            return;
        };
        if !s.awaiting {
            return;
        }
        s.awaiting = false;
        match result {
            Ok(out) => {
                if !s.head_sent {
                    let _ = http::start_chunked(&mut c.write_buf, "200 OK", content_type(s.format));
                    if let Some(h) = &out.header {
                        let _ = http::write_chunk(&mut c.write_buf, h.as_bytes());
                    }
                    s.head_sent = true;
                }
                let _ = http::write_chunk(&mut c.write_buf, out.text.as_bytes());
                state.metrics.add_rows(out.rows);
                let take = s.remaining.min(s.batch);
                s.remaining -= take;
                Outcome::Continue
            }
            Err((status, msg)) => {
                if s.head_sent {
                    // status already on the wire: end the stream early
                    // rather than desync the framing
                    eprintln!(
                        "kamino-serve: stream for model {} truncated: {msg}",
                        s.slot.id
                    );
                    Outcome::Truncated
                } else {
                    Outcome::Failed(status, msg, c.close_after)
                }
            }
        }
    };
    match outcome {
        // the post-completion advance pass pumps the next batch
        Outcome::Continue => {}
        Outcome::Truncated => {
            let _ = http::finish_chunked(&mut c.write_buf);
            c.phase = Phase::Idle;
            c.close_after = true;
            finish_inflight(c, state, "200 OK");
        }
        Outcome::Failed(status, msg, close) => {
            c.phase = Phase::Idle;
            send_reply(
                c,
                state,
                Reply {
                    status,
                    content_type: "application/json",
                    body: err_body(&msg),
                    close,
                    retry_after: None,
                },
            );
        }
    }
}

/// Enforces the per-request deadline (`--request-timeout`).
///
/// A request whose status line has not gone out yet is answered
/// `503` + `Retry-After`; a chunked stream whose `200` head is already
/// on the wire is terminated with a well-formed empty chunk carrying a
/// `kamino-trailer: deadline-expired` trailer, then closed. Either way
/// the connection's generation is bumped so a late worker completion
/// addressed to the expired request is dropped, never written into the
/// next exchange.
fn expire_deadline(c: &mut Conn, state: &Arc<AppState>, now: u64, next_gen: &mut u64) {
    let timeout = state.request_timeout_ns;
    if timeout == 0 {
        return;
    }
    let Some(t0) = c.inflight.as_ref().map(|i| i.t0) else {
        return;
    };
    if now.saturating_sub(t0) <= timeout {
        return;
    }
    let head_sent = match &c.phase {
        // the response is already buffered; only the socket is slow, and
        // the write-stall guard owns that case
        Phase::Idle => return,
        Phase::AwaitWorker => false,
        Phase::Streaming(s) => s.head_sent,
    };
    c.gen = *next_gen;
    *next_gen += 1;
    state
        .metrics
        .deadline_expired
        .fetch_add(1, Ordering::Relaxed);
    c.phase = Phase::Idle; // drops the stream's pin, if any
    if head_sent {
        let _ = http::finish_chunked_with_trailer(
            &mut c.write_buf,
            "kamino-trailer",
            "deadline-expired",
        );
        c.close_after = true;
        finish_inflight(c, state, "200 OK");
    } else {
        let reply = Reply::json_retry(
            "503 Service Unavailable",
            Json::obj([("error", Json::Str("deadline expired".into()))]),
            c.close_after,
            1,
        );
        send_reply(c, state, reply);
    }
}

/// Parses and dispatches buffered requests while the connection is idle.
fn serve_buffered(
    c: &mut Conn,
    token: u64,
    state: &Arc<AppState>,
    jobs: &mpsc::Sender<Job>,
    draining: bool,
) {
    loop {
        pump(c, token, state, jobs);
        if !matches!(c.phase, Phase::Idle)
            || c.close_after
            || c.dead
            || c.write_buf.len() >= HIGH_WATER
        {
            return;
        }
        match http::try_parse(&c.read_buf) {
            Parse::Partial => {
                if c.read_closed && !c.read_buf.is_empty() {
                    // a half request can never complete
                    c.dead = true;
                }
                return;
            }
            Parse::Bad(status) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut c.write_buf,
                    status,
                    "application/json",
                    &err_body("malformed request"),
                    true,
                );
                server::observe_request(state, "unparsed", "-", status, 0);
                c.close_after = true;
                return;
            }
            Parse::Ready { req, consumed } => {
                c.read_buf.drain(..consumed);
                handle_request(c, token, &req, state, jobs, draining);
            }
        }
    }
}

fn handle_request(
    c: &mut Conn,
    token: u64,
    req: &Request,
    state: &Arc<AppState>,
    jobs: &mpsc::Sender<Job>,
    draining: bool,
) {
    state.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let close = req.wants_close() || draining;
    let route = server::route_label(req);
    let mut span = state.obs.span("serve.request");
    if span.is_active() {
        span.arg("route", route.to_string());
        span.arg("method", req.method.clone());
    }
    c.inflight = Some(Inflight {
        span,
        t0: clock::now_nanos(),
        route,
        method: req.method.clone(),
    });
    match server::dispatch(req, token, c.gen, state, jobs, close) {
        Action::Respond(reply) => send_reply(c, state, reply),
        Action::Stream(start) => begin_stream(c, start, close),
        Action::AwaitWorker => {
            c.phase = Phase::AwaitWorker;
            c.close_after |= close;
        }
    }
}

/// Pulls everything the socket has for us (up to the read cap).
fn do_read(c: &mut Conn, now: u64) {
    let mut buf = [0u8; 16 * 1024];
    while c.read_buf.len() < READ_CAP {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.read_closed = true;
                return;
            }
            Ok(n) => {
                c.read_buf.extend_from_slice(&buf[..n]);
                c.last_activity = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
}

/// Flushes as much buffered response as the socket accepts.
fn do_write(c: &mut Conn, now: u64) {
    while !c.write_buf.is_empty() {
        match c.stream.write(&c.write_buf) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => {
                c.write_buf.drain(..n);
                c.last_activity = now;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
}

/// Whether the connection has nothing left to do and should close.
fn finished(c: &Conn, draining: bool) -> bool {
    if c.dead {
        return true;
    }
    let idle = matches!(c.phase, Phase::Idle) && c.write_buf.is_empty();
    if idle && (c.close_after || draining) {
        return true;
    }
    // peer will never send another request and we owe it nothing
    idle && c.read_closed && c.read_buf.is_empty()
}

/// The event loop. Owns the listener, the poller and every connection;
/// returns after a drain completes. Dropping `jobs` on return is what
/// lets the worker threads finish and exit.
pub(crate) fn run(
    mut poller: sys::Poller,
    listener: TcpListener,
    state: &Arc<AppState>,
    jobs: mpsc::Sender<Job>,
    done: &Arc<CompletionQueue>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    poller.add(&listener, TOKEN_LISTENER, sys::Interest::READABLE)?;
    poller.add(done.waker(), TOKEN_WAKER, sys::Interest::READABLE)?;
    let mut listener_armed = true;
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut events: Vec<sys::Event> = Vec::new();
    let mut next_gen: u64 = 1;
    loop {
        poller.wait(POLL_TICK_MS, &mut events)?;
        let now = clock::now_nanos();
        let draining = state.draining.load(Ordering::Acquire);
        let accepting = !draining;
        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER if accepting => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept(&poller, &mut conns, stream, &mut next_gen, state, now)
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                },
                TOKEN_LISTENER => {}
                TOKEN_WAKER => done.waker().drain(),
                token => {
                    if let Some(c) = conn_at(&mut conns, token) {
                        if ev.readable || ev.hangup {
                            do_read(c, now);
                        }
                        if ev.writable {
                            do_write(c, now);
                        }
                    }
                }
            }
        }
        for comp in done.drain() {
            apply_completion(&mut conns, comp, state);
        }
        // re-read: a completion-applied /shutdown or one parsed below can
        // only be observed on the next tick, which is fine
        let draining = state.draining.load(Ordering::Acquire);
        if draining && listener_armed {
            let _ = poller.delete(&listener);
            listener_armed = false;
        }
        for idx in 0..conns.len() {
            let token = idx as u64 + TOKEN_BASE;
            let Some(c) = conns[idx].as_mut() else {
                continue;
            };
            expire_deadline(c, state, now, &mut next_gen);
            serve_buffered(c, token, state, &jobs, draining);
            do_write(c, now);
            if !c.dead && !c.write_buf.is_empty() {
                if now.saturating_sub(c.last_activity) > WRITE_STALL_TIMEOUT.as_nanos() as u64 {
                    c.dead = true;
                }
            } else if !c.dead
                && matches!(c.phase, Phase::Idle)
                && c.inflight.is_none()
                && now.saturating_sub(c.last_activity) > IDLE_READ_TIMEOUT.as_nanos() as u64
            {
                c.dead = true;
            }
            if finished(c, draining) {
                close_conn(&poller, &mut conns, idx, state);
            } else {
                let want = sys::Interest {
                    readable: !c.read_closed && c.read_buf.len() < READ_CAP,
                    writable: !c.write_buf.is_empty(),
                };
                if want != c.interest && poller.modify(&c.stream, token, want).is_ok() {
                    c.interest = want;
                }
            }
        }
        if draining && conns.iter().all(Option::is_none) {
            return Ok(());
        }
    }
}

fn conn_at(conns: &mut [Option<Conn>], token: u64) -> Option<&mut Conn> {
    let idx = usize::try_from(token.checked_sub(TOKEN_BASE)?).ok()?;
    conns.get_mut(idx)?.as_mut()
}

fn accept(
    poller: &sys::Poller,
    conns: &mut Vec<Option<Conn>>,
    stream: TcpStream,
    next_gen: &mut u64,
    state: &Arc<AppState>,
    now: u64,
) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let idx = match conns.iter().position(Option::is_none) {
        Some(i) => i,
        None => {
            conns.push(None);
            conns.len() - 1
        }
    };
    let token = idx as u64 + TOKEN_BASE;
    if poller.add(&stream, token, sys::Interest::READABLE).is_err() {
        return;
    }
    let gen = *next_gen;
    *next_gen += 1;
    conns[idx] = Some(Conn {
        stream,
        gen,
        read_buf: Vec::new(),
        write_buf: Vec::new(),
        phase: Phase::Idle,
        close_after: false,
        read_closed: false,
        dead: false,
        last_activity: now,
        interest: sys::Interest::READABLE,
        inflight: None,
    });
    state
        .metrics
        .open_connections
        .fetch_add(1, Ordering::Relaxed);
}

fn close_conn(poller: &sys::Poller, conns: &mut [Option<Conn>], idx: usize, state: &Arc<AppState>) {
    if let Some(c) = conns[idx].take() {
        let _ = poller.delete(&c.stream);
        state
            .metrics
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
        // dropping the Conn closes the socket and releases any pin
    }
}
