//! Hand-rolled HTTP/1.1 plumbing: request parsing, response writing and
//! chunked transfer encoding, on nothing but `std`.
//!
//! The parser is deliberately strict and bounded — request line ≤ 8 KiB,
//! ≤ 64 headers, body ≤ 16 MiB — because the server faces the network.
//! Anything outside those bounds is a `400`/`413`, not an allocation.
//! Keep-alive is supported (HTTP/1.1 default); a `Connection: close`
//! header from either side ends the connection after the in-flight
//! exchange.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Bound on the request line and on any single header line.
const MAX_LINE: usize = 8 * 1024;
/// Bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Bound on a request body.
pub const MAX_BODY: usize = 16 * 1024 * 1024;
/// Bound on the whole request head (request line + headers + blank
/// line). The event loop buffers at most this much while hunting for the
/// head terminator; anything longer is answered with `431` instead of an
/// allocation.
pub const MAX_HEAD: usize = 32 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Lower-cased header names → values.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty when none).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// A query parameter parsed to `usize`.
    pub fn query_usize(&self, key: &str) -> Option<usize> {
        self.query.get(key).and_then(|v| v.parse().ok())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before a request started — the
    /// normal end of a keep-alive session.
    Eof,
    /// Transport failure mid-request.
    Io(io::Error),
    /// The bytes are not valid HTTP within the parser's bounds. The
    /// payload is the status line to answer with.
    Bad(&'static str),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, ReadError> {
    let mut line = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte).map_err(ReadError::Io)?;
        if n == 0 {
            if line.is_empty() {
                return Err(ReadError::Eof);
            }
            return Err(ReadError::Bad("400 Bad Request"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| ReadError::Bad("400 Bad Request"));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err(ReadError::Bad("431 Request Header Fields Too Large"));
        }
    }
}

/// Decodes `%XX` escapes and `+` in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(q: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in q.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k), percent_decode(v));
    }
    out
}

/// Reads one request from the stream. `Err(ReadError::Eof)` is the clean
/// end of a keep-alive connection.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ReadError> {
    let (mut req, len) = read_head(r)?;
    if len > 0 {
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(ReadError::Io)?;
        req.body = body;
    }
    Ok(req)
}

/// Parses the request line and headers (through the blank line), leaving
/// the body unread. Returns the request with an empty body plus the
/// declared `content-length`. Shared by the blocking [`read_request`]
/// and the event loop's incremental [`try_parse`].
pub fn read_head<R: BufRead>(r: &mut R) -> Result<(Request, usize), ReadError> {
    let request_line = read_line(r)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Bad("400 Bad Request"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ReadError::Bad("400 Bad Request"))?;
    let version = parts.next().ok_or(ReadError::Bad("400 Bad Request"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad("505 HTTP Version Not Supported"));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), BTreeMap::new()),
    };

    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Bad("431 Request Header Fields Too Large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Bad("400 Bad Request"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    // chunked request bodies are not implemented; silently treating the
    // body as empty would desync the keep-alive stream (the chunk bytes
    // would parse as the next request), so refuse loudly
    if headers.contains_key("transfer-encoding") {
        return Err(ReadError::Bad("501 Not Implemented"));
    }

    let len = match headers.get("content-length") {
        None => 0,
        Some(v) => {
            let len: usize = v.parse().map_err(|_| ReadError::Bad("400 Bad Request"))?;
            if len > MAX_BODY {
                return Err(ReadError::Bad("413 Content Too Large"));
            }
            len
        }
    };

    Ok((
        Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        len,
    ))
}

/// Outcome of an incremental parse attempt over buffered bytes.
#[derive(Debug)]
pub enum Parse {
    /// Not enough bytes for a complete request yet; read more.
    Partial,
    /// One complete request, and how many buffered bytes it consumed
    /// (drain exactly that many — pipelined requests may follow).
    Ready {
        /// The parsed request.
        req: Request,
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// The bytes are not valid HTTP within the parser's bounds; answer
    /// with this status line and close (resync is impossible).
    Bad(&'static str),
}

/// Finds the end of the request head (the byte after the blank line),
/// accepting both CRLF and bare-LF line endings like [`read_line`] does.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1..i + 3) {
                Some(b"\r\n") => return Some(i + 3),
                _ => {
                    if buf.get(i + 1) == Some(&b'\n') {
                        return Some(i + 2);
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Attempts to parse one request from the front of `buf` without
/// blocking: the event loop calls this after every read. The same
/// bounded parser as [`read_request`] does the head work, so torn and
/// pipelined writes converge to identical outcomes as the blocking path.
pub fn try_parse(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        // no terminator yet: bound how much head a client may dribble in
        if buf.len() > MAX_HEAD {
            return Parse::Bad("431 Request Header Fields Too Large");
        }
        return Parse::Partial;
    };
    if head_end > MAX_HEAD {
        return Parse::Bad("431 Request Header Fields Too Large");
    }
    let mut head = &buf[..head_end];
    match read_head(&mut head) {
        // Eof cannot happen (the terminator is present), but treat it as
        // malformed rather than looping
        Err(ReadError::Eof) | Err(ReadError::Io(_)) => Parse::Bad("400 Bad Request"),
        Err(ReadError::Bad(status)) => Parse::Bad(status),
        Ok((mut req, len)) => {
            let total = head_end + len;
            if buf.len() < total {
                return Parse::Partial;
            }
            req.body = buf[head_end..total].to_vec();
            Parse::Ready {
                req,
                consumed: total,
            }
        }
    }
}

/// Writes a complete (non-chunked) response.
pub fn write_response<W: Write>(
    w: &mut W,
    status: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response_extra(w, status, content_type, body, close, &[])
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on `429`/`503`). Header names and values must already be wire-safe.
pub fn write_response_extra<W: Write>(
    w: &mut W,
    status: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the header of a chunked response; follow with
/// [`write_chunk`] calls and one [`finish_chunked`].
pub fn start_chunked<W: Write>(w: &mut W, status: &str, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: keep-alive\r\n\r\n"
    )
}

/// Writes one chunk (empty input is skipped — an empty chunk would
/// terminate the stream).
pub fn write_chunk<W: Write>(w: &mut W, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    write!(w, "\r\n")
}

/// Terminates a chunked response.
pub fn finish_chunked<W: Write>(w: &mut W) -> io::Result<()> {
    write!(w, "0\r\n\r\n")?;
    w.flush()
}

/// Terminates a chunked response early with a trailer header — the only
/// in-band way to tell a client mid-stream that the body is incomplete
/// (e.g. `kamino-trailer: deadline-expired`). Clients that ignore
/// trailers still see a well-formed, terminated chunked body.
pub fn finish_chunked_with_trailer<W: Write>(w: &mut W, name: &str, value: &str) -> io::Result<()> {
    write!(w, "0\r\n{name}: {value}\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r =
            req("GET /models/3/synthesize?n=500&batch=50&format=csv HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/models/3/synthesize");
        assert_eq!(r.query_usize("n"), Some(500));
        assert_eq!(r.query_usize("batch"), Some(50));
        assert_eq!(r.query.get("format").map(String::as_str), Some("csv"));
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            req("POST /fit HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world")
                .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello world");
        assert!(r.wants_close());
    }

    #[test]
    fn eof_and_garbage_are_distinct() {
        assert!(matches!(req(""), Err(ReadError::Eof)));
        assert!(matches!(req("NOT HTTP\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(
            req("GET / SPDY/99\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
    }

    #[test]
    fn chunked_request_bodies_are_refused() {
        let raw = "POST /fit HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
        assert!(matches!(
            req(raw),
            Err(ReadError::Bad("501 Not Implemented"))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(req(&raw), Err(ReadError::Bad(_))));
    }

    #[test]
    fn percent_decoding() {
        let r = req("GET /x?name=a%20b+c&pct=%2f HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query.get("name").map(String::as_str), Some("a b c"));
        assert_eq!(r.query.get("pct").map(String::as_str), Some("/"));
    }

    #[test]
    fn incremental_parse_matches_blocking_parse() {
        let raw = b"POST /fit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // every prefix short of the full request is Partial, never Bad
        for cut in 0..raw.len() {
            assert!(
                matches!(try_parse(&raw[..cut]), Parse::Partial),
                "cut at {cut}"
            );
        }
        let Parse::Ready { req, consumed } = try_parse(raw) else {
            panic!("full request must parse");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incremental_parse_handles_pipelined_requests() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let Parse::Ready { req, consumed } = try_parse(raw) else {
            panic!("first request must parse");
        };
        assert_eq!(req.path, "/healthz");
        let rest = &raw[consumed..];
        let Parse::Ready { req, consumed } = try_parse(rest) else {
            panic!("second request must parse");
        };
        assert_eq!(req.path, "/metrics");
        assert_eq!(consumed, rest.len());
    }

    #[test]
    fn incremental_parse_bounds_the_head() {
        // a head that never terminates must hit the 431 bound, not grow
        let mut dribble = b"GET / HTTP/1.1\r\n".to_vec();
        while dribble.len() <= MAX_HEAD {
            dribble.extend_from_slice(b"x-pad: yyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
        }
        assert!(matches!(try_parse(&dribble), Parse::Bad(s) if s.starts_with("431")));
        // an oversized declared body is refused before buffering it
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(try_parse(raw.as_bytes()), Parse::Bad(s) if s.starts_with("413")));
        // garbage is Bad, not Partial
        assert!(matches!(
            try_parse(b"NOT HTTP AT ALL\r\n\r\n"),
            Parse::Bad(_)
        ));
    }

    #[test]
    fn incremental_parse_accepts_bare_lf_heads() {
        let raw = b"GET /healthz HTTP/1.1\nhost: x\n\n";
        let Parse::Ready { req, consumed } = try_parse(raw) else {
            panic!("bare-LF request must parse");
        };
        assert_eq!(req.path, "/healthz");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn response_and_chunked_writers() {
        let mut out = Vec::new();
        write_response(&mut out, "200 OK", "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        start_chunked(&mut out, "200 OK", "text/csv").unwrap();
        write_chunk(&mut out, b"a,b\n").unwrap();
        write_chunk(&mut out, b"").unwrap();
        write_chunk(&mut out, b"1,2\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.contains("4\r\na,b\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn extra_headers_and_trailers_render() {
        let mut out = Vec::new();
        write_response_extra(
            &mut out,
            "429 Too Many Requests",
            "application/json",
            b"{}",
            false,
            &[("retry-after", "1")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nretry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        start_chunked(&mut out, "200 OK", "text/csv").unwrap();
        write_chunk(&mut out, b"a,b\n").unwrap();
        finish_chunked_with_trailer(&mut out, "kamino-trailer", "deadline-expired").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.ends_with("0\r\nkamino-trailer: deadline-expired\r\n\r\n"));
    }
}
