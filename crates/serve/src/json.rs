//! A minimal pure-std JSON codec for the serving layer.
//!
//! The server's request and response bodies are small and flat, so this
//! is a deliberately compact implementation: a [`Json`] tree, a
//! recursive-descent parser with a depth limit, and a writer that
//! escapes strings per RFC 8259. Numbers are `f64` throughout (every
//! value the API carries fits); non-finite numbers serialize as `null`,
//! and the API encodes ε = ∞ as the string `"inf"` explicitly where it
//! matters.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting the parser accepts — the API never needs more than a
/// handful; a hostile body cannot trigger deep recursion.
const MAX_DEPTH: usize = 32;

/// Maximum body the parser will look at (pre-checked by the HTTP layer
/// too; this is defense in depth).
const MAX_INPUT: usize = 1 << 24;

/// A JSON value. Objects keep sorted keys (`BTreeMap`) so output is
/// deterministic — handy for tests and reproducible logs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        if text.len() > MAX_INPUT {
            return Err("input too large".into());
        }
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(out)),
                b => return Err(format!("expected `,` or `]`, found `{}`", b as char)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(out)),
                b => return Err(format!("expected `,` or `}}`, found `{}`", b as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let h = self.bump()?;
                            code =
                                code * 16 + (h as char).to_digit(16).ok_or("invalid \\u escape")?;
                        }
                        // surrogate pairs are rejected rather than decoded —
                        // the API never emits them
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    b => return Err(format!("invalid escape `\\{}`", b as char)),
                },
                b if b < 0x20 => return Err("unescaped control character".into()),
                b if b < 0x80 => out.push(b as char),
                b => {
                    // multi-byte UTF-8: re-validate the full sequence
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 in string".into()),
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 in string".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}`"))?;
        if !x.is_finite() {
            return Err(format!("number `{text}` out of range"));
        }
        Ok(Json::Num(x))
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a": 1, "b": [true, null, -2.5], "c": {"x": "hi\nthere"}, "n": 300}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(300));
        let arr = match v.get("b").unwrap() {
            Json::Arr(a) => a,
            _ => panic!(),
        };
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2].as_f64(), Some(-2.5));
        // print → parse is stable
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line\n\"quote\"\t\\slash\u{1}".into());
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        // unicode survives
        let v = Json::parse(r#""caf\u00e9 né""#).unwrap();
        assert_eq!(v.as_str(), Some("café né"));
    }

    #[test]
    fn garbage_is_an_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":}",
            "\"\\q\"",
            "nul",
            "[\u{7}]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_print_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(1.0).to_string(), "1");
        assert_eq!(Json::Num(1.25).to_string(), "1.25");
    }
}
