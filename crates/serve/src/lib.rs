//! Durable model snapshots and a pure-std synthesis server.
//!
//! The Kamino pipeline pays its privacy budget and DP-SGD training cost
//! once, at fit time; everything after that is post-processing. This
//! crate gives that split a production shape:
//!
//! * [`snapshot`] — the versioned `.kamino` container (magic + section
//!   table + per-section CRC-32, fixed little-endian layout, no external
//!   dependencies) persisting a complete fitted session: schema,
//!   encoders, DC list with learned weights, model tensors, privacy
//!   parameters, configuration, and the session RNG cursor. A loaded
//!   session continues its deterministic sample stream exactly where the
//!   saved one stopped.
//! * [`server`] — a std-`TcpListener` + scoped-thread-pool HTTP/1.1
//!   front end (`POST /fit`, `GET /models/{id}`,
//!   `POST /models/{id}/synthesize`, `/healthz`, `/metrics`) streaming
//!   chunked CSV or NDJSON rows off fitted models, with [`json`],
//!   [`http`] and [`metrics`] as its hand-rolled substrate.
//!
//! The `kamino-serve` binary wires [`server::Server`] to `--listen`,
//! `--model-dir` and `--threads` flags; the `kamino` facade re-exports
//! this crate as `kamino::serve` and adds `save`/`load` methods to its
//! `Synthesizer` session API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod snapshot;

pub use json::Json;
pub use server::{ServeConfig, Server};
pub use snapshot::{
    decode_fitted, encode_fitted, load_fitted, save_fitted, SnapshotError, FORMAT_VERSION,
};
