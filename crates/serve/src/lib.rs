//! Durable model snapshots and a pure-std synthesis server.
//!
//! The Kamino pipeline pays its privacy budget and DP-SGD training cost
//! once, at fit time; everything after that is post-processing. This
//! crate gives that split a production shape:
//!
//! * [`snapshot`] — the versioned `.kamino` container (magic + section
//!   table + per-section CRC-32, fixed little-endian layout, no external
//!   dependencies) persisting a complete fitted session: schema,
//!   encoders, DC list with learned weights, model tensors, privacy
//!   parameters, configuration, and the session RNG cursor. A loaded
//!   session continues its deterministic sample stream exactly where the
//!   saved one stopped.
//! * [`server`] — an epoll event loop (via [`sys`], pure-std FFI kept in
//!   the vendored `epoll` crate) driving non-blocking HTTP/1.1
//!   connection state machines, with a worker pool for the CPU-bound
//!   jobs: fits, snapshot loads, sample batches and pool refills.
//!   [`json`], [`http`] and [`metrics`] are its hand-rolled substrate.
//! * [`registry`] — the model table: lazy snapshot loading, bounded
//!   residency with cursor-exact LRU eviction, pin-protected streams.
//! * [`pool`] — per-model pre-sampled batch rings that serve hot
//!   `/synthesize` traffic at memcpy speed without changing a single
//!   byte of the deterministic sample stream.
//!
//! The `kamino-serve` binary wires [`server::Server`] to `--listen`,
//! `--model-dir`, `--threads`, `--max-models` and `--pool-batches`
//! flags; the `kamino` facade re-exports this crate as `kamino::serve`
//! and adds `save`/`load` methods to its `Synthesizer` session API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod server;
pub mod snapshot;
pub mod sys;

pub use json::Json;
pub use pool::{Format, PoolConfig, SamplePool};
pub use registry::{Registry, RegistryStats};
pub use server::{ServeConfig, Server};
pub use snapshot::{
    decode_fitted, encode_fitted, load_fitted, save_fitted, SnapshotError, FORMAT_VERSION,
};
