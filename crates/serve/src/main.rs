//! The `kamino-serve` binary: fit Kamino models over HTTP and stream
//! synthetic rows from them.
//!
//! ```text
//! kamino-serve [--listen ADDR] [--model-dir DIR] [--threads N]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:7878`; port `0` picks
//!   an ephemeral port, printed on boot).
//! * `--model-dir` — directory of `.kamino` snapshots: existing ones are
//!   loaded at boot, fit jobs and `POST /models/{id}/snapshot` write new
//!   ones.
//! * `--threads` — worker threads serving connections (default 4).
//!
//! The process exits 0 after a graceful `POST /shutdown`.

use std::path::PathBuf;
use std::process::ExitCode;

use kamino_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!("usage: kamino-serve [--listen ADDR] [--model-dir DIR] [--threads N]");
    std::process::exit(2);
}

fn parse_args() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen"),
            "--model-dir" => cfg.model_dir = Some(PathBuf::from(value("--model-dir"))),
            "--threads" => {
                cfg.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads takes a positive integer");
                    usage()
                });
                if cfg.threads == 0 {
                    eprintln!("--threads takes a positive integer");
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    cfg
}

fn main() -> ExitCode {
    let cfg = parse_args();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kamino-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("kamino-serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("kamino-serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kamino-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
