//! The `kamino-serve` binary: fit Kamino models over HTTP and stream
//! synthetic rows from them.
//!
//! ```text
//! kamino-serve [--listen ADDR] [--model-dir DIR] [--threads N]
//!              [--max-models N] [--pool-batches N] [--pool-rows N]
//!              [--request-timeout SECS] [--max-queue N]
//!              [--trace-out FILE]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:7878`; port `0` picks
//!   an ephemeral port, printed on boot).
//! * `--model-dir` — directory of `.kamino` snapshots: existing ones are
//!   registered (lazily, without decoding) at boot; fit jobs,
//!   `POST /models/{id}/snapshot` and LRU eviction write new ones.
//! * `--threads` — worker threads for CPU-bound jobs: fits, snapshot
//!   loads, sample batches, pool refills (default 4).
//! * `--max-models` — most models resident in memory at once; the
//!   least-recently-used unpinned model is evicted to its snapshot
//!   (default 0 = unbounded; requires `--model-dir` to be useful).
//! * `--pool-batches` — pre-sampled batches kept per model (default 4;
//!   0 disables pooling).
//! * `--pool-rows` — rows per pooled batch (default 1000); `/synthesize`
//!   requests streaming in chunks of exactly this size are served from
//!   the pool.
//! * `--request-timeout` — per-request deadline in (possibly fractional)
//!   seconds. A request that cannot complete in time gets `503` +
//!   `Retry-After`; a stream already under way is terminated with a
//!   `kamino-trailer: deadline-expired` trailer (default 0 = off).
//! * `--max-queue` — bound on queued worker jobs; beyond it new
//!   `/synthesize` and snapshot work is shed with `429` + `Retry-After`,
//!   and pool speculation pauses at half the bound (default 0 = off).
//! * `--trace-out` — on shutdown, write everything the server recorded
//!   (request spans, fit phases, the DP budget ledger) as a
//!   chrome://tracing JSON file. The same document is available live via
//!   `POST /debug/trace`.
//!
//! The process exits 0 after a graceful `POST /shutdown`.

use std::path::PathBuf;
use std::process::ExitCode;

use kamino_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: kamino-serve [--listen ADDR] [--model-dir DIR] [--threads N] \
         [--max-models N] [--pool-batches N] [--pool-rows N] \
         [--request-timeout SECS] [--max-queue N] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_count(name: &str, value: String) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{name} takes a non-negative integer");
        usage()
    })
}

fn parse_args() -> (ServeConfig, Option<PathBuf>) {
    let mut cfg = ServeConfig::default();
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen"),
            "--model-dir" => cfg.model_dir = Some(PathBuf::from(value("--model-dir"))),
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--threads" => {
                cfg.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads takes a positive integer");
                    usage()
                });
                if cfg.threads == 0 {
                    eprintln!("--threads takes a positive integer");
                    usage();
                }
            }
            "--max-models" => cfg.max_models = parse_count("--max-models", value("--max-models")),
            "--pool-batches" => {
                cfg.pool_batches = parse_count("--pool-batches", value("--pool-batches"))
            }
            "--pool-rows" => cfg.pool_rows = parse_count("--pool-rows", value("--pool-rows")),
            "--request-timeout" => {
                let secs: f64 = value("--request-timeout").parse().unwrap_or(-1.0);
                if !(secs >= 0.0 && secs.is_finite()) {
                    eprintln!("--request-timeout takes a non-negative number of seconds");
                    usage();
                }
                cfg.request_timeout = std::time::Duration::from_secs_f64(secs);
            }
            "--max-queue" => cfg.max_queue = parse_count("--max-queue", value("--max-queue")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    (cfg, trace_out)
}

fn main() -> ExitCode {
    let (cfg, trace_out) = parse_args();
    // the handle is clone-cheap and shares the server's sinks, so the
    // trace written at exit contains everything the server recorded
    let obs = cfg.obs.clone();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kamino-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("kamino-serve listening on http://{}", server.local_addr());
    let outcome = server.run();
    if let Some(path) = &trace_out {
        // kamino-lint: allow(unflushed_write) -- best-effort debug trace written at exit, not a durability surface
        match std::fs::write(path, obs.chrome_trace_json()) {
            Ok(()) => println!("kamino-serve: trace written to {}", path.display()),
            Err(e) => eprintln!(
                "kamino-serve: writing trace to {} failed: {e}",
                path.display()
            ),
        }
    }
    match outcome {
        Ok(()) => {
            println!("kamino-serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kamino-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
