//! Serving metrics: lock-free counters plus a fixed ring of per-second
//! buckets for rows/sec, surfaced by `GET /metrics` as Prometheus text
//! exposition (merged with the server's `kamino-obs` registry).

use std::sync::atomic::{AtomicU64, Ordering};

use kamino_obs::clock;
use kamino_obs::ObsHandle;

use crate::registry::RegistryStats;

/// Length of the rows/sec sliding window, in seconds (also the ring
/// size: one bucket per second).
const WINDOW_SECS: u64 = 10;

/// Stamp marking a ring bucket that has never been written.
const EMPTY: u64 = u64::MAX;

/// One per-second bucket of the rows/sec ring.
struct Bucket {
    /// Elapsed-second stamp the bucket currently belongs to.
    sec: AtomicU64,
    /// Rows recorded during that second.
    rows: AtomicU64,
}

/// Process-wide serving counters. All writers use relaxed ordering —
/// these are statistics, not synchronization. The rows/sec window is a
/// fixed ring of `WINDOW_SECS` per-second buckets: `add_rows` is two
/// atomic ops on the bucket owned by the current second (no lock, no
/// unbounded growth, no linear scan under burst traffic).
pub struct Metrics {
    start_ns: u64,
    /// Requests accepted (any route, any outcome).
    pub requests: AtomicU64,
    /// Requests that ended in a 4xx/5xx.
    pub errors: AtomicU64,
    /// Synthetic rows streamed by `/synthesize`.
    pub rows: AtomicU64,
    /// Fit jobs started.
    pub fits_started: AtomicU64,
    /// Fit jobs completed successfully.
    pub fits_done: AtomicU64,
    /// Connections currently being served.
    pub open_connections: AtomicU64,
    /// Requests shed with `429` because the worker queue was full.
    pub sheds: AtomicU64,
    /// Requests answered `503` (or streams truncated) by the deadline.
    pub deadline_expired: AtomicU64,
    /// `POST /fit` requests rejected by the concurrent-fit cap.
    pub fit_rejected: AtomicU64,
    /// Worker jobs queued but not yet picked up.
    pub queue_depth: AtomicU64,
    /// 1 while pool speculation is paused under queue pressure.
    pub speculation_paused: AtomicU64,
    /// Per-second buckets, indexed by `elapsed_sec % WINDOW_SECS`.
    ring: Vec<Bucket>,
}

impl Metrics {
    /// Fresh counters; the obs clock anchors uptime and the rows/sec ring.
    pub fn new() -> Metrics {
        Metrics {
            start_ns: clock::now_nanos(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            fits_started: AtomicU64::new(0),
            fits_done: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            fit_rejected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            speculation_paused: AtomicU64::new(0),
            ring: (0..WINDOW_SECS)
                .map(|_| Bucket {
                    sec: AtomicU64::new(EMPTY),
                    rows: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn elapsed_secs(&self) -> u64 {
        clock::now_nanos().saturating_sub(self.start_ns) / 1_000_000_000
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> f64 {
        clock::now_nanos().saturating_sub(self.start_ns) as f64 / 1e9
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        clock::now_nanos().saturating_sub(self.start_ns) / 1_000_000
    }

    /// Records `n` synthesized rows (total + the per-second ring).
    ///
    /// The bucket reset below is deliberately approximate: two threads
    /// crossing a second boundary together can each store the new stamp
    /// and clobber at most one concurrent `fetch_add` — an acceptable
    /// error for a rate statistic, in exchange for staying lock-free.
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
        let now = self.elapsed_secs();
        let bucket = &self.ring[(now % WINDOW_SECS) as usize];
        if bucket.sec.load(Ordering::Relaxed) != now {
            bucket.sec.store(now, Ordering::Relaxed);
            bucket.rows.store(0, Ordering::Relaxed);
        }
        bucket.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Rows per second over the last `WINDOW_SECS` (10) seconds.
    pub fn rows_per_sec(&self) -> f64 {
        let now = self.elapsed_secs();
        let total: u64 = self
            .ring
            .iter()
            .filter(|b| {
                let sec = b.sec.load(Ordering::Relaxed);
                sec != EMPTY && now.saturating_sub(sec) < WINDOW_SECS
            })
            .map(|b| b.rows.load(Ordering::Relaxed))
            .sum();
        total as f64 / WINDOW_SECS as f64
    }

    /// Errors as a fraction of all requests (0 when nothing served yet).
    pub fn error_rate(&self) -> f64 {
        let requests = self.requests.load(Ordering::Relaxed);
        if requests == 0 {
            return 0.0;
        }
        self.errors.load(Ordering::Relaxed) as f64 / requests as f64
    }

    /// The `GET /metrics` body: the server counters rendered as
    /// Prometheus text exposition, then the registry's pool/LRU gauges,
    /// then everything in the obs registry (request-latency histograms,
    /// the DP budget ledger).
    pub fn render_prometheus(&self, obs: &ObsHandle, registry: &RegistryStats) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, v: u64| {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        };
        let gauge = |out: &mut String, name: &str, v: f64| {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        };
        gauge(&mut out, "kamino_uptime_seconds", self.uptime_secs());
        counter(
            &mut out,
            "kamino_http_requests_total",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamino_http_errors_total",
            self.errors.load(Ordering::Relaxed),
        );
        gauge(&mut out, "kamino_http_error_rate", self.error_rate());
        counter(
            &mut out,
            "kamino_rows_synthesized_total",
            self.rows.load(Ordering::Relaxed),
        );
        gauge(&mut out, "kamino_rows_per_sec", self.rows_per_sec());
        counter(
            &mut out,
            "kamino_fits_started_total",
            self.fits_started.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamino_fits_done_total",
            self.fits_done.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "kamino_open_connections",
            self.open_connections.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut out,
            "kamino_shed_total",
            self.sheds.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamino_deadline_expired_total",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "kamino_fit_rejected_total",
            self.fit_rejected.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "kamino_queue_depth",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "kamino_speculation_paused",
            self.speculation_paused.load(Ordering::Relaxed) as f64,
        );
        gauge(&mut out, "kamino_open_models", registry.total as f64);
        gauge(&mut out, "kamino_ready_models", registry.resident as f64);
        gauge(&mut out, "kamino_resident_models", registry.resident as f64);
        gauge(
            &mut out,
            "kamino_max_resident_models",
            registry.max_resident as f64,
        );
        counter(&mut out, "kamino_model_loads_total", registry.loads);
        counter(&mut out, "kamino_model_evictions_total", registry.evictions);
        counter(&mut out, "kamino_pool_hits_total", registry.pool_hits);
        counter(&mut out, "kamino_pool_misses_total", registry.pool_misses);
        counter(
            &mut out,
            "kamino_ledger_replays_total",
            registry.ledger_replays,
        );
        counter(
            &mut out,
            "kamino_quarantined_files_total",
            registry.quarantined,
        );
        // the durable upper bound on spent ε; +Inf when any recorded fit
        // was non-private
        let eps = if registry.ledger_epsilon.is_infinite() {
            "+Inf".to_string()
        } else {
            format!("{}", registry.ledger_epsilon)
        };
        out.push_str(&format!(
            "# TYPE kamino_ledger_epsilon_total gauge\nkamino_ledger_epsilon_total {eps}\n"
        ));
        out.push_str("# TYPE kamino_pool_depth gauge\n");
        for (id, depth) in &registry.pool_depths {
            out.push_str(&format!("kamino_pool_depth{{model=\"{id}\"}} {depth}\n"));
        }
        out.push_str(&obs.render_prometheus());
        out
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(total: usize, resident: usize) -> RegistryStats {
        RegistryStats {
            total,
            resident,
            max_resident: 2,
            pool_depths: vec![(1, 3)],
            pool_hits: 9,
            pool_misses: 4,
            evictions: 1,
            loads: 2,
            ledger_replays: 1,
            quarantined: 2,
            ledger_epsilon: f64::INFINITY,
        }
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.requests.fetch_add(4, Ordering::Relaxed);
        m.errors.fetch_add(1, Ordering::Relaxed);
        m.add_rows(100);
        m.add_rows(50);
        assert_eq!(m.rows.load(Ordering::Relaxed), 150);
        assert!(m.rows_per_sec() > 0.0);
        assert!((m.error_rate() - 0.25).abs() < 1e-12);
        let body = m.render_prometheus(&ObsHandle::disabled(), &stats(2, 1));
        assert!(body.contains("# TYPE kamino_http_requests_total counter"));
        assert!(body.contains("kamino_http_requests_total 4\n"));
        assert!(body.contains("kamino_rows_synthesized_total 150\n"));
        assert!(body.contains("kamino_http_error_rate 0.25\n"));
        assert!(body.contains("kamino_open_models 2\n"));
        assert!(body.contains("kamino_ready_models 1\n"));
        assert!(body.contains("kamino_resident_models 1\n"));
        assert!(body.contains("kamino_max_resident_models 2\n"));
        assert!(body.contains("kamino_pool_hits_total 9\n"));
        assert!(body.contains("kamino_pool_misses_total 4\n"));
        assert!(body.contains("kamino_model_evictions_total 1\n"));
        assert!(body.contains("kamino_model_loads_total 2\n"));
        assert!(body.contains("kamino_pool_depth{model=\"1\"} 3\n"));
        assert!(body.contains("kamino_shed_total 0\n"));
        assert!(body.contains("kamino_deadline_expired_total 0\n"));
        assert!(body.contains("kamino_fit_rejected_total 0\n"));
        assert!(body.contains("kamino_queue_depth 0\n"));
        assert!(body.contains("kamino_speculation_paused 0\n"));
        assert!(body.contains("kamino_ledger_replays_total 1\n"));
        assert!(body.contains("kamino_quarantined_files_total 2\n"));
        assert!(body.contains("kamino_ledger_epsilon_total +Inf\n"));
    }

    #[test]
    fn ring_stays_fixed_size_under_bursts() {
        let m = Metrics::new();
        // a burst far larger than the old Vec-based window would hold
        for _ in 0..10_000 {
            m.add_rows(7);
        }
        assert_eq!(m.ring.len(), WINDOW_SECS as usize);
        assert_eq!(m.rows.load(Ordering::Relaxed), 70_000);
        // the whole burst lands inside the window
        assert!((m.rows_per_sec() - 7_000.0).abs() < 1e-9);
    }

    #[test]
    fn stale_buckets_age_out_of_the_rate() {
        let m = Metrics::new();
        // simulate a bucket written WINDOW_SECS+5 seconds "ago" by
        // stamping it directly
        m.ring[0].sec.store(0, Ordering::Relaxed);
        m.ring[0].rows.store(500, Ordering::Relaxed);
        // now == 0 for a fresh metrics instance, so the bucket is live
        assert!(m.rows_per_sec() >= 50.0);
        // re-stamp as EMPTY: contributes nothing
        m.ring[0].sec.store(EMPTY, Ordering::Relaxed);
        assert_eq!(m.rows_per_sec(), 0.0);
    }

    #[test]
    fn prometheus_merges_the_obs_registry() {
        let m = Metrics::new();
        let obs = ObsHandle::enabled();
        obs.counter("kamino_dp_plans_total", &[]).inc();
        let body = m.render_prometheus(&obs, &stats(0, 0));
        assert!(body.contains("# TYPE kamino_dp_plans_total counter"));
        assert!(body.contains("kamino_dp_plans_total 1\n"));
    }
}
