//! Serving metrics: lock-free counters plus a short sliding window for
//! rows/sec, surfaced by `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// Length of the rows/sec sliding window, in seconds.
const WINDOW_SECS: u64 = 10;

/// Process-wide serving counters. All writers use relaxed ordering —
/// these are statistics, not synchronization.
pub struct Metrics {
    start: Instant,
    /// Requests accepted (any route, any outcome).
    pub requests: AtomicU64,
    /// Requests that ended in a 4xx/5xx.
    pub errors: AtomicU64,
    /// Synthetic rows streamed by `/synthesize`.
    pub rows: AtomicU64,
    /// Fit jobs started.
    pub fits_started: AtomicU64,
    /// Fit jobs completed successfully.
    pub fits_done: AtomicU64,
    /// Connections currently being served.
    pub open_connections: AtomicU64,
    /// (elapsed-second, row-count) samples for the rows/sec window.
    window: Mutex<Vec<(u64, u64)>>,
}

impl Metrics {
    /// Fresh counters; `start` anchors uptime and the rows/sec window.
    pub fn new() -> Metrics {
        Metrics {
            // kamino-lint: allow(wall_clock) -- serving latency metrics are wall-clock by definition and feed no artifacts
            start: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            fits_started: AtomicU64::new(0),
            fits_done: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            window: Mutex::new(Vec::new()),
        }
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Records `n` synthesized rows (total + sliding window).
    pub fn add_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
        let now = self.start.elapsed().as_secs();
        let mut w = self.window.lock().unwrap();
        w.retain(|&(t, _)| now - t < WINDOW_SECS);
        w.push((now, n));
    }

    /// Rows per second over the last `WINDOW_SECS` (10) seconds.
    pub fn rows_per_sec(&self) -> f64 {
        let now = self.start.elapsed().as_secs();
        let w = self.window.lock().unwrap();
        let total: u64 = w
            .iter()
            .filter(|&&(t, _)| now - t < WINDOW_SECS)
            .map(|&(_, n)| n)
            .sum();
        total as f64 / WINDOW_SECS as f64
    }

    /// The `GET /metrics` body.
    pub fn to_json(&self, open_models: usize, ready_models: usize) -> Json {
        Json::obj([
            ("uptime_ms", Json::Num(self.uptime_ms() as f64)),
            (
                "requests_total",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors_total",
                Json::Num(self.errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "rows_synthesized_total",
                Json::Num(self.rows.load(Ordering::Relaxed) as f64),
            ),
            ("rows_per_sec", Json::Num(self.rows_per_sec())),
            (
                "fits_started_total",
                Json::Num(self.fits_started.load(Ordering::Relaxed) as f64),
            ),
            (
                "fits_done_total",
                Json::Num(self.fits_done.load(Ordering::Relaxed) as f64),
            ),
            (
                "open_connections",
                Json::Num(self.open_connections.load(Ordering::Relaxed) as f64),
            ),
            ("open_models", Json::Num(open_models as f64)),
            ("ready_models", Json::Num(ready_models as f64)),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.add_rows(100);
        m.add_rows(50);
        assert_eq!(m.rows.load(Ordering::Relaxed), 150);
        assert!(m.rows_per_sec() > 0.0);
        let j = m.to_json(2, 1);
        assert_eq!(j.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("rows_synthesized_total").unwrap().as_u64(), Some(150));
        assert_eq!(j.get("open_models").unwrap().as_u64(), Some(2));
    }
}
