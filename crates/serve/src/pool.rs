//! Per-model pre-sampled row pools: a bounded ring of pre-drawn,
//! pre-encoded batches that lets hot `/synthesize` requests complete at
//! memcpy speed.
//!
//! ## Determinism contract
//!
//! A fitted model's sample stream is defined by the *sequence of draw
//! sizes* applied to its RNG cursor (sampling is column-major per batch,
//! so `sample(40)` ≠ `sample(20)` twice). The pool therefore never
//! changes what bytes a client observes — it only moves the work
//! earlier:
//!
//! * Every pooled batch records the RNG cursor captured **before** its
//!   draw (`rng_before`). The ring is a pure speculation of the next
//!   `depth` draws of exactly [`PoolConfig::rows`] rows each.
//! * A request whose batch size matches [`PoolConfig::rows`] pops the
//!   oldest speculation — bytes identical to what a direct draw at that
//!   cursor would have produced, because it *is* that draw.
//! * Any other batch size rewinds: the RNG is restored to the oldest
//!   unserved batch's `rng_before` and the ring is discarded, making the
//!   session behave as if no speculation ever happened. The direct draw
//!   then proceeds from the canonical cursor.
//! * Persistence (snapshot, LRU eviction) stores the **rewound** cursor,
//!   so an evict→reload resumes the observable stream bit-exactly: the
//!   reloaded session re-draws whatever the discarded ring had
//!   speculated.
//!
//! Drains and refills both require `&mut` access and are serialized by
//! the owning slot's model mutex (see [`crate::registry`]), so batches
//! are always served in cursor order.

use std::collections::VecDeque;
use std::sync::Arc;

use kamino_core::FittedKamino;
use kamino_data::{AttrKind, Instance, Schema, Value};

use crate::json::Json;

/// Output encoding of a synthesized batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Comma-separated rows (no header — the stream writes that once).
    Csv,
    /// Newline-delimited JSON objects.
    Json,
}

/// Pool sizing, applied to every model the server holds.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Ring depth in batches; `0` disables pooling entirely.
    pub batches: usize,
    /// Rows per pooled batch. Only requests streaming in chunks of
    /// exactly this size are pool-eligible.
    pub rows: usize,
}

impl PoolConfig {
    /// A configuration with pooling switched off.
    pub fn disabled() -> PoolConfig {
        PoolConfig {
            batches: 0,
            rows: 0,
        }
    }

    /// Whether this configuration pools at all.
    pub fn enabled(&self) -> bool {
        self.batches > 0 && self.rows > 0
    }
}

/// One speculated draw: the cursor it started from plus both encodings
/// of its rows (encoded once at refill, shared by reference afterwards).
struct PooledBatch {
    rng_before: [u64; 4],
    rows: u64,
    /// `None` when the schema turned out not to be CSV-serializable.
    csv: Option<Arc<str>>,
    ndjson: Arc<str>,
}

/// A bounded ring of pre-drawn batches for one resident model.
pub struct SamplePool {
    cfg: PoolConfig,
    ring: VecDeque<PooledBatch>,
}

impl SamplePool {
    /// An empty pool with the given shape.
    pub fn new(cfg: PoolConfig) -> SamplePool {
        SamplePool {
            cfg,
            ring: VecDeque::with_capacity(cfg.batches),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Batches currently speculated.
    pub fn depth(&self) -> usize {
        self.ring.len()
    }

    /// Whether a background refill would add anything.
    pub fn wants_refill(&self) -> bool {
        self.cfg.enabled() && self.ring.len() < self.cfg.batches
    }

    /// Whether `rows` is a pool-eligible batch size.
    fn aligned(&self, rows: usize) -> bool {
        self.cfg.enabled() && rows == self.cfg.rows
    }

    /// Whether [`SamplePool::take_batch`] would be a pure pop (no
    /// sampling) for this request — the event loop's fast-path gate.
    pub fn has_ready(&self, rows: usize, format: Format) -> bool {
        self.aligned(rows)
            && match self.ring.front() {
                Some(b) => format == Format::Json || b.csv.is_some(),
                None => false,
            }
    }

    /// Speculates one more batch: captures the cursor, draws
    /// [`PoolConfig::rows`] rows, encodes both formats. Returns `false`
    /// when the ring is full or pooling is disabled.
    pub fn refill_one(&mut self, fitted: &mut FittedKamino) -> bool {
        if !self.wants_refill() {
            return false;
        }
        let rng_before = fitted.rng_state();
        let inst = fitted.sample(self.cfg.rows);
        let rows = inst.n_rows() as u64;
        let csv = kamino_data::csv::rows_text(fitted.schema(), &inst)
            .ok()
            .map(Arc::from);
        let ndjson: Arc<str> = Arc::from(ndjson_rows(fitted.schema(), &inst));
        self.ring.push_back(PooledBatch {
            rng_before,
            rows,
            csv,
            ndjson,
        });
        true
    }

    /// Discards every speculated batch and restores the RNG to the
    /// canonical cursor (the oldest unserved batch's `rng_before`), as
    /// if no speculation had happened.
    pub fn rewind(&mut self, fitted: &mut FittedKamino) {
        if let Some(front) = self.ring.front() {
            fitted.set_rng_state(front.rng_before);
        }
        self.ring.clear();
    }

    /// The cursor persistence must store: where the observable stream
    /// actually is, excluding speculated-but-unserved batches.
    pub fn persist_state(&self, fitted: &FittedKamino) -> [u64; 4] {
        match self.ring.front() {
            Some(front) => front.rng_before,
            None => fitted.rng_state(),
        }
    }

    /// Serves the next `rows` of the stream in `format`. Pops a pooled
    /// batch when one matches (a *hit*, no sampling); otherwise rewinds
    /// any speculation and draws directly. Returns the encoded text, the
    /// row count, and whether it was a hit. `Err` carries an encoding
    /// failure (CSV on a non-serializable schema).
    pub fn take_batch(
        &mut self,
        fitted: &mut FittedKamino,
        rows: usize,
        format: Format,
    ) -> Result<(Arc<str>, u64, bool), String> {
        if self.has_ready(rows, format) {
            if let Some(b) = self.ring.pop_front() {
                let text = match format {
                    Format::Json => b.ndjson,
                    Format::Csv => b.csv.unwrap_or_else(|| Arc::from("")),
                };
                return Ok((text, b.rows, true));
            }
        }
        self.rewind(fitted);
        let inst = fitted.sample(rows);
        let n = inst.n_rows() as u64;
        let text = match format {
            Format::Csv => {
                kamino_data::csv::rows_text(fitted.schema(), &inst).map_err(|e| e.to_string())?
            }
            Format::Json => ndjson_rows(fitted.schema(), &inst),
        };
        Ok((Arc::from(text), n, false))
    }
}

/// Formats a batch as NDJSON: one object per row per line (categorical
/// codes resolve to their labels, numerics stay numbers).
pub fn ndjson_rows(schema: &Schema, inst: &Instance) -> String {
    let mut out = String::with_capacity(inst.n_rows() * schema.len() * 16);
    for i in 0..inst.n_rows() {
        let obj = Json::Obj(
            (0..schema.len())
                .map(|j| {
                    let attr = schema.attr(j);
                    let v = match (inst.value(i, j), &attr.kind) {
                        (Value::Cat(c), AttrKind::Categorical { .. }) => {
                            Json::Str(attr.label(c).unwrap_or("?").to_string())
                        }
                        (Value::Num(x), _) => Json::Num(x),
                        (Value::Cat(c), _) => Json::Num(c as f64),
                    };
                    (attr.name.clone(), v)
                })
                .collect(),
        );
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_core::{fit_kamino, KaminoConfig};
    use kamino_dp::Budget;
    use std::sync::OnceLock;

    fn fitted_bytes() -> &'static Vec<u8> {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        BYTES.get_or_init(|| {
            let d = kamino_datasets::adult_like(80, 3);
            let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
            cfg.train_scale = 0.02;
            cfg.embed_dim = 8;
            cfg.seed = 21;
            let fitted = fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
            crate::snapshot::encode_fitted(&fitted)
        })
    }

    fn fresh_fitted() -> FittedKamino {
        crate::snapshot::decode_fitted(fitted_bytes()).unwrap()
    }

    #[test]
    fn pooled_hits_match_direct_draws_exactly() {
        let mut pooled = fresh_fitted();
        let mut direct = fresh_fitted();
        let mut pool = SamplePool::new(PoolConfig {
            batches: 3,
            rows: 7,
        });
        // speculate ahead of the client
        assert!(pool.refill_one(&mut pooled));
        assert!(pool.refill_one(&mut pooled));
        assert_eq!(pool.depth(), 2);
        for _ in 0..4 {
            let (text, rows, hit) = pool.take_batch(&mut pooled, 7, Format::Csv).unwrap();
            let d = direct.sample(7);
            let want = kamino_data::csv::rows_text(direct.schema(), &d).unwrap();
            assert_eq!(&*text, want, "pooled bytes must equal the direct path");
            assert_eq!(rows, 7);
            // the first two were speculated, the rest drawn on demand
            let _ = hit;
        }
    }

    #[test]
    fn misaligned_request_rewinds_the_speculation() {
        let mut pooled = fresh_fitted();
        let mut direct = fresh_fitted();
        let mut pool = SamplePool::new(PoolConfig {
            batches: 4,
            rows: 5,
        });
        pool.refill_one(&mut pooled);
        pool.refill_one(&mut pooled);
        // a different batch size must behave as if nothing was speculated
        let (text, rows, hit) = pool.take_batch(&mut pooled, 9, Format::Json).unwrap();
        assert!(!hit);
        assert_eq!(rows, 9);
        assert_eq!(pool.depth(), 0, "speculation discarded");
        let d = direct.sample(9);
        assert_eq!(&*text, ndjson_rows(direct.schema(), &d));
        // and the streams stay in lockstep afterwards
        let (after, _, _) = pool.take_batch(&mut pooled, 5, Format::Json).unwrap();
        let d = direct.sample(5);
        assert_eq!(&*after, ndjson_rows(direct.schema(), &d));
    }

    #[test]
    fn persist_state_excludes_unserved_speculation() {
        let mut fitted = fresh_fitted();
        let before = fitted.rng_state();
        let mut pool = SamplePool::new(PoolConfig {
            batches: 2,
            rows: 6,
        });
        pool.refill_one(&mut fitted);
        assert_ne!(fitted.rng_state(), before, "speculation advanced the rng");
        assert_eq!(
            pool.persist_state(&fitted),
            before,
            "persisted cursor must rewind past the speculation"
        );
        // serving the speculated batch moves the persisted cursor forward
        let _ = pool.take_batch(&mut fitted, 6, Format::Json).unwrap();
        assert_eq!(pool.persist_state(&fitted), fitted.rng_state());
    }

    #[test]
    fn disabled_pool_is_a_pure_pass_through() {
        let mut fitted = fresh_fitted();
        let mut direct = fresh_fitted();
        let mut pool = SamplePool::new(PoolConfig::disabled());
        assert!(!pool.refill_one(&mut fitted));
        assert!(!pool.wants_refill());
        let (text, rows, hit) = pool.take_batch(&mut fitted, 11, Format::Csv).unwrap();
        assert!(!hit);
        assert_eq!(rows, 11);
        let d = direct.sample(11);
        assert_eq!(
            &*text,
            kamino_data::csv::rows_text(direct.schema(), &d).unwrap()
        );
    }
}
