//! The model registry: a lazy-loading, bounded-residency LRU over
//! `.kamino` snapshots.
//!
//! Boot no longer decodes every snapshot in `--model-dir`: each file's
//! header and section table are validated with
//! [`crate::snapshot::peek_snapshot`] and registered as an *unloaded*
//! slot. The first request that needs the model loads it
//! ([`Registry::ensure_resident`]); once more than `--max-models` are
//! resident, the least-recently-touched unpinned model is evicted.
//!
//! Eviction is cursor-exact: the model's sample pool is rewound (see
//! [`crate::pool`]), the snapshot is re-encoded with the rewound RNG
//! cursor and atomically rewritten, and the in-memory model is dropped.
//! Reloading resumes the observable sample stream bit-for-bit where the
//! evicted one left it.
//!
//! ## Locking
//!
//! Each slot splits its state in two so the event loop never blocks on
//! sampling:
//!
//! * [`ModelSlot::status`] — a cheap mutex over the lifecycle state and
//!   cached metadata, held only for copies. `/models` listings and
//!   `/models/{id}` info never touch the model mutex.
//! * [`ModelSlot::resident`] — the heavy mutex guarding the fitted model
//!   and its pool, held across sampling, refills, loads and eviction.
//!
//! Lock order is always `resident` before `status`. Pins
//! ([`Registry::pin`]) are taken *before* any eviction scan can observe
//! the slot lock-free, and eviction re-checks the pin count while
//! holding the model mutex, so a model streaming rows is never evicted
//! under its client.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kamino_core::FittedKamino;
use kamino_data::Schema;
use kamino_obs::{Event, ObsHandle};

use crate::durable::{self, AbortReason, Ledger, LedgerRecord, Manifest};
use crate::json::Json;
use crate::pool::{PoolConfig, SamplePool};
use crate::snapshot::{load_fitted, peek_snapshot, verify_snapshot, write_snapshot_bytes};

/// A fitted model held in memory together with its sample pool.
pub struct Resident {
    /// The fitted session (boxed: it is large and moves between states).
    pub fitted: Box<FittedKamino>,
    /// Its ring of speculated batches.
    pub pool: SamplePool,
}

/// Cheap, copyable facts about a fitted model, cached in the slot status
/// so info routes never wait on the model mutex.
pub struct ModelMeta {
    /// The schema the model synthesizes for.
    pub schema: Schema,
    /// Pre-rendered CSV header line (`None` when the schema is not
    /// CSV-serializable).
    pub csv_header: Option<String>,
    /// The `GET /models/{id}` detail fields (everything except
    /// `model_id` and `status`).
    pub info: Vec<(&'static str, Json)>,
}

fn duration_ms(d: std::time::Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

fn epsilon_json(eps: f64) -> Json {
    if eps.is_finite() {
        Json::Num(eps)
    } else {
        Json::Str("inf".into())
    }
}

impl ModelMeta {
    /// Captures the metadata of a freshly fitted or loaded session.
    pub fn new(f: &FittedKamino) -> Arc<ModelMeta> {
        let info = vec![
            ("achieved_epsilon", epsilon_json(f.achieved_epsilon())),
            ("delta", Json::Num(f.config().budget.delta)),
            ("n_input", Json::Num(f.n_input() as f64)),
            ("attributes", Json::Num(f.schema().len() as f64)),
            ("dcs", Json::Num(f.dcs().len() as f64)),
            ("shards", Json::Num(f.config().shards as f64)),
            (
                "sequence",
                Json::Arr(f.sequence.iter().map(|&i| Json::Num(i as f64)).collect()),
            ),
            (
                "params",
                Json::obj([
                    ("sigma_g", Json::Num(f.params.sigma_g)),
                    ("sigma_d", Json::Num(f.params.sigma_d)),
                    ("sigma_w", Json::Num(f.params.sigma_w)),
                    ("iterations", Json::Num(f.params.t as f64)),
                    ("batch", Json::Num(f.params.b as f64)),
                    ("clip", Json::Num(f.params.clip)),
                ]),
            ),
            (
                "timings_ms",
                Json::obj([
                    ("sequencing", duration_ms(f.timings.sequencing)),
                    ("training", duration_ms(f.timings.training)),
                    ("dc_weights", duration_ms(f.timings.dc_weights)),
                    ("sampling", duration_ms(f.timings.sampling)),
                    ("sample_fill", duration_ms(f.timings.sample_fill)),
                    ("sample_repair", duration_ms(f.timings.sample_repair)),
                    ("sample_mcmc", duration_ms(f.timings.sample_mcmc)),
                ]),
            ),
        ];
        Arc::new(ModelMeta {
            schema: f.schema().clone(),
            csv_header: kamino_data::csv::header_line(f.schema()).ok(),
            info,
        })
    }
}

/// Lifecycle state of a slot, visible without the model mutex.
pub enum SlotStatus {
    /// A fit job is still training.
    Fitting,
    /// Resident in memory, ready to sample.
    Ready(Arc<ModelMeta>),
    /// On disk only. The metadata is cached when the model was resident
    /// before (eviction keeps it); `None` for never-loaded boot entries.
    Unloaded(Option<Arc<ModelMeta>>),
    /// The fit failed.
    Failed(String),
}

impl SlotStatus {
    /// The wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            SlotStatus::Fitting => "fitting",
            SlotStatus::Ready(_) => "ready",
            SlotStatus::Unloaded(_) => "unloaded",
            SlotStatus::Failed(_) => "failed",
        }
    }

    /// The cached metadata, when any exists.
    pub fn meta(&self) -> Option<Arc<ModelMeta>> {
        match self {
            SlotStatus::Ready(m) => Some(Arc::clone(m)),
            SlotStatus::Unloaded(m) => m.clone(),
            _ => None,
        }
    }
}

/// One model slot: identity, lifecycle, and (possibly) a resident model.
pub struct ModelSlot {
    /// Stable model id (survives restarts for `model-{id}.kamino` files).
    pub id: u64,
    /// Snapshot path backing this slot, when one exists.
    path: Mutex<Option<PathBuf>>,
    /// Lifecycle + cached metadata (cheap mutex, held for copies only).
    pub status: Mutex<SlotStatus>,
    /// The fitted model and its pool (heavy mutex, held across sampling).
    pub resident: Mutex<Option<Resident>>,
    /// Streams currently using the model; eviction skips pinned slots.
    pins: AtomicU64,
    /// Recency stamp from the registry's logical touch counter.
    last_touch: AtomicU64,
    /// Set while a refill job is queued or running (dedupes refills).
    pub refill_queued: AtomicBool,
    /// Mirror of the pool's ring depth for lock-free metrics.
    pub pool_depth: AtomicU64,
}

impl ModelSlot {
    fn new(id: u64, status: SlotStatus, path: Option<PathBuf>) -> Arc<ModelSlot> {
        Arc::new(ModelSlot {
            id,
            path: Mutex::new(path),
            status: Mutex::new(status),
            resident: Mutex::new(None),
            pins: AtomicU64::new(0),
            last_touch: AtomicU64::new(0),
            refill_queued: AtomicBool::new(false),
            pool_depth: AtomicU64::new(0),
        })
    }

    /// The snapshot path backing this slot, if any.
    pub fn snapshot_path(&self) -> Option<PathBuf> {
        self.path.lock().unwrap().clone()
    }

    /// Records the snapshot path (after a fit persists or `POST
    /// /models/{id}/snapshot` writes one).
    pub fn set_snapshot_path(&self, p: PathBuf) {
        *self.path.lock().unwrap() = Some(p);
    }

    /// The `GET /models/{id}` body.
    pub fn info_json(&self) -> Json {
        let guard = self.status.lock().unwrap();
        let mut fields = vec![
            ("model_id".to_string(), Json::Num(self.id as f64)),
            ("status".to_string(), Json::Str(guard.name().into())),
        ];
        match &*guard {
            SlotStatus::Failed(msg) => fields.push(("error".into(), Json::Str(msg.clone()))),
            _ => {
                if let Some(meta) = guard.meta() {
                    for (k, v) in &meta.info {
                        fields.push((k.to_string(), v.clone()));
                    }
                }
            }
        }
        Json::Obj(fields.into_iter().collect())
    }
}

/// Keeps a slot safe from eviction while a stream is using it.
pub struct PinGuard {
    slot: Arc<ModelSlot>,
}

impl PinGuard {
    /// The pinned slot.
    pub fn slot(&self) -> &Arc<ModelSlot> {
        &self.slot
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.slot.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Aggregate registry numbers for `GET /metrics`.
pub struct RegistryStats {
    /// Slots known to the registry (any state).
    pub total: usize,
    /// Models resident in memory right now.
    pub resident: usize,
    /// Residency bound (`0` = unbounded).
    pub max_resident: usize,
    /// `(model id, ring depth)` for every slot.
    pub pool_depths: Vec<(u64, u64)>,
    /// Pooled batches served without sampling.
    pub pool_hits: u64,
    /// Batches that had to sample on demand.
    pub pool_misses: u64,
    /// Models evicted to disk.
    pub evictions: u64,
    /// Snapshot loads (boot-lazy or post-eviction).
    pub loads: u64,
    /// Ledger records replayed at boot.
    pub ledger_replays: u64,
    /// Files quarantined (corrupt snapshots, stale tmps, bad manifests).
    pub quarantined: u64,
    /// Σ budgeted ε across every ledger intent — the durable upper
    /// bound on privacy spend against this model directory (∞ when any
    /// fit was non-private; 0 without a `--model-dir`).
    pub ledger_epsilon: f64,
}

/// The server's model table.
pub struct Registry {
    slots: Mutex<BTreeMap<u64, Arc<ModelSlot>>>,
    next_id: AtomicU64,
    /// Monotonic logical clock for LRU recency (never wall time).
    touch_seq: AtomicU64,
    max_resident: usize,
    pool_cfg: PoolConfig,
    model_dir: Option<PathBuf>,
    /// Pooled batches served without sampling.
    pub pool_hits: AtomicU64,
    /// Batches that had to sample on demand.
    pub pool_misses: AtomicU64,
    /// Models evicted to disk.
    pub evictions: AtomicU64,
    /// Snapshot loads (lazy boot loads and post-eviction reloads).
    pub loads: AtomicU64,
    /// The durable write-ahead ledger (`Some` once [`Registry::boot_scan`]
    /// ran with a model directory). Appends serialize on this mutex.
    ledger: Mutex<Option<Ledger>>,
    /// The committed-model manifest mirror, rewritten atomically on disk
    /// after every snapshot commit.
    manifest: Mutex<Manifest>,
    /// Bit pattern of the Σ-intent-ε gauge (updated under the ledger
    /// mutex; reads are lock-free).
    ledger_epsilon_bits: AtomicU64,
    /// Ledger records replayed at boot.
    pub ledger_replays: AtomicU64,
    /// Files quarantined at boot or during recovery.
    pub quarantined: AtomicU64,
}

impl Registry {
    /// An empty registry. `max_resident == 0` means unbounded.
    pub fn new(max_resident: usize, pool_cfg: PoolConfig, model_dir: Option<PathBuf>) -> Registry {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            touch_seq: AtomicU64::new(1),
            max_resident,
            pool_cfg,
            model_dir,
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            ledger: Mutex::new(None),
            manifest: Mutex::new(Manifest::default()),
            ledger_epsilon_bits: AtomicU64::new(0f64.to_bits()),
            ledger_replays: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The pool shape every resident model gets.
    pub fn pool_config(&self) -> PoolConfig {
        self.pool_cfg
    }

    /// The model directory, when serving with persistence.
    pub fn model_dir(&self) -> Option<&Path> {
        self.model_dir.as_deref()
    }

    /// Boots the durable state of the model directory:
    ///
    /// 1. replays the write-ahead ledger — truncating any torn tail,
    ///    counting every intent's ε as spent, appending a recovery
    ///    `FitAbort` for each dangling intent and surfacing it as a
    ///    `failed (crashed)` model;
    /// 2. loads the committed-model manifest (an unreadable one is
    ///    quarantined, not fatal);
    /// 3. registers every `.kamino` whose section CRCs all verify as an
    ///    unloaded slot, quarantines the rest along with stale tmp
    ///    files, and warns about manifest entries whose snapshot is
    ///    gone.
    ///
    /// Ids embedded in server-written names (`model-{id}.kamino`) stay
    /// stable across restarts; foreign names get the next free id after
    /// every recognized one — and after every id the ledger has ever
    /// mentioned, so a crashed fit's id is never reused.
    pub fn boot_scan(&self, obs: &ObsHandle) -> std::io::Result<()> {
        let Some(dir) = &self.model_dir else {
            return Ok(());
        };
        let dir = dir.clone();
        std::fs::create_dir_all(&dir)?;
        let ledger_max = self.boot_ledger(&dir, obs)?;
        self.boot_manifest(&dir);
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
            let path = entry.path();
            if durable::is_stale_tmp(&path) {
                self.quarantine_file(&path, "stale tmp from an interrupted install");
            } else if path.extension().is_some_and(|x| x == "kamino") {
                paths.push(path);
            }
        }
        paths.sort();
        let mut foreign = Vec::new();
        for path in paths {
            if let Err(e) = peek_snapshot(&path).and_then(|_| verify_snapshot(&path)) {
                self.quarantine_file(&path, &e.to_string());
                continue;
            }
            match id_from_snapshot_name(&path) {
                Some(id) if !self.slots.lock().unwrap().contains_key(&id) => {
                    self.insert_unloaded(id, path);
                }
                _ => foreign.push(path),
            }
        }
        // a committed model whose snapshot vanished (or was quarantined)
        // is an operational loss worth shouting about — but not an outage
        for (id, name) in &self.manifest.lock().unwrap().entries {
            if !self.slots.lock().unwrap().contains_key(id) {
                eprintln!(
                    "kamino-serve: WARNING: manifest lists committed model {id} \
                     ({name}) but no verified snapshot backs it"
                );
            }
        }
        let max_id = self
            .slots
            .lock()
            .unwrap()
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
            .max(ledger_max);
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        for path in foreign {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.insert_unloaded(id, path);
        }
        Ok(())
    }

    /// Opens and replays the ledger; converts dangling intents into
    /// `failed (crashed)` slots. Returns the largest model id the ledger
    /// has ever mentioned.
    fn boot_ledger(&self, dir: &Path, obs: &ObsHandle) -> std::io::Result<u64> {
        let (mut ledger, replay) = Ledger::open(dir)?;
        for &(id, _) in &replay.dangling {
            ledger.append(&LedgerRecord::FitAbort {
                model_id: id,
                reason: AbortReason::Crash,
            })?;
        }
        self.ledger_replays
            .store(replay.records.len() as u64, Ordering::Relaxed);
        self.ledger_epsilon_bits
            .store(replay.spent_epsilon.to_bits(), Ordering::Relaxed);
        if !replay.records.is_empty() || replay.truncated_bytes > 0 {
            println!(
                "kamino-serve: replayed {} ledger record(s) ({} dangling, {} torn byte(s) \
                 truncated); ε recorded as spent: {}",
                replay.records.len(),
                replay.dangling.len(),
                replay.truncated_bytes,
                replay.spent_epsilon
            );
            obs.event(Event::LedgerReplay {
                records: replay.records.len() as u64,
                dangling: replay.dangling.len() as u64,
                spent_epsilon: replay.spent_epsilon,
            });
        }
        for (id, epsilon) in replay.dangling {
            self.slots.lock().unwrap().entry(id).or_insert_with(|| {
                ModelSlot::new(
                    id,
                    SlotStatus::Failed(format!(
                        "crashed: the process died mid-fit; its budgeted ε={epsilon} \
                         stays counted as spent"
                    )),
                    None,
                )
            });
        }
        let max = replay.max_model_id;
        *self.ledger.lock().unwrap() = Some(ledger);
        Ok(max)
    }

    /// Loads the manifest; a present-but-unreadable one is quarantined.
    fn boot_manifest(&self, dir: &Path) {
        match Manifest::load(dir) {
            Ok(Some(m)) => *self.manifest.lock().unwrap() = m,
            Ok(None) => {}
            Err(e) => {
                self.quarantine_file(&dir.join(durable::MANIFEST_NAME), &e);
            }
        }
    }

    /// Renames a failed file to `*.quarantine`, logs, and counts it.
    fn quarantine_file(&self, path: &Path, why: &str) {
        match durable::quarantine(path) {
            Ok(target) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "kamino-serve: quarantined {} -> {} ({why})",
                    path.display(),
                    target.display()
                );
            }
            Err(e) => eprintln!(
                "kamino-serve: failed to quarantine {} ({why}): {e}",
                path.display()
            ),
        }
    }

    /// Durably records a fit intent *before* any DP mechanism runs.
    /// With a ledger, an `Err` means the intent could not be made
    /// durable — the caller must not run the fit. Without one
    /// (no `--model-dir`), spends are process-local by design and the
    /// intent is a no-op.
    pub fn record_fit_intent(
        &self,
        model_id: u64,
        epsilon: f64,
        delta: f64,
        plan_hash: u64,
    ) -> Result<(), String> {
        let mut guard = self.ledger.lock().unwrap();
        let Some(ledger) = guard.as_mut() else {
            return Ok(());
        };
        ledger
            .append(&LedgerRecord::FitIntent {
                model_id,
                epsilon,
                delta,
                plan_hash,
            })
            .map_err(|e| format!("budget ledger append failed: {e}"))?;
        let total = f64::from_bits(self.ledger_epsilon_bits.load(Ordering::Relaxed)) + epsilon;
        self.ledger_epsilon_bits
            .store(total.to_bits(), Ordering::Relaxed);
        Ok(())
    }

    /// Records a fit commit (best-effort: the spend itself is already
    /// durable via the intent).
    pub fn record_fit_commit(&self, model_id: u64, achieved_epsilon: f64, fingerprint: u64) {
        if let Some(ledger) = self.ledger.lock().unwrap().as_mut() {
            if let Err(e) = ledger.append(&LedgerRecord::FitCommit {
                model_id,
                achieved_epsilon,
                fingerprint,
            }) {
                eprintln!("kamino-serve: ledger commit for model {model_id} failed: {e}");
            }
        }
    }

    /// Records a fit abort (best-effort, like commits).
    pub fn record_fit_abort(&self, model_id: u64, reason: AbortReason) {
        if let Some(ledger) = self.ledger.lock().unwrap().as_mut() {
            if let Err(e) = ledger.append(&LedgerRecord::FitAbort { model_id, reason }) {
                eprintln!("kamino-serve: ledger abort for model {model_id} failed: {e}");
            }
        }
    }

    /// Adds a committed model to the manifest and atomically rewrites
    /// it on disk. Called after every successful snapshot install.
    pub fn commit_to_manifest(&self, model_id: u64, path: &Path) {
        let Some(dir) = &self.model_dir else { return };
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut manifest = self.manifest.lock().unwrap();
        if manifest.entries.get(&model_id) == Some(&name) {
            return;
        }
        manifest.entries.insert(model_id, name);
        if let Err(e) = manifest.store(dir) {
            eprintln!("kamino-serve: manifest update for model {model_id} failed: {e}");
        }
    }

    fn insert_unloaded(&self, id: u64, path: PathBuf) {
        println!("kamino-serve: registered {} as model {id}", path.display());
        let slot = ModelSlot::new(id, SlotStatus::Unloaded(None), Some(path));
        self.slots.lock().unwrap().insert(id, slot);
    }

    /// Looks a slot up by id.
    pub fn get(&self, id: u64) -> Option<Arc<ModelSlot>> {
        self.slots.lock().unwrap().get(&id).cloned()
    }

    /// Every slot, in id order.
    pub fn list(&self) -> Vec<Arc<ModelSlot>> {
        self.slots.lock().unwrap().values().cloned().collect()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether no models exist at all.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().unwrap().is_empty()
    }

    /// Creates a fresh slot in the `Fitting` state and returns it.
    pub fn create_fitting(&self) -> Arc<ModelSlot> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = ModelSlot::new(id, SlotStatus::Fitting, None);
        self.slots.lock().unwrap().insert(id, Arc::clone(&slot));
        slot
    }

    /// Bumps a slot's LRU recency (logical counter — the lint contract
    /// keeps wall clocks out of ordering decisions).
    pub fn touch(&self, slot: &ModelSlot) {
        let stamp = self.touch_seq.fetch_add(1, Ordering::Relaxed);
        slot.last_touch.store(stamp, Ordering::Relaxed);
    }

    /// Pins a slot against eviction for the guard's lifetime.
    pub fn pin(&self, slot: &Arc<ModelSlot>) -> PinGuard {
        slot.pins.fetch_add(1, Ordering::AcqRel);
        PinGuard {
            slot: Arc::clone(slot),
        }
    }

    /// Installs a finished fit into its slot (or records the failure),
    /// persisting a snapshot when asked. Returns whether the install
    /// succeeded.
    pub fn finish_fit(
        &self,
        slot: &Arc<ModelSlot>,
        outcome: Result<FittedKamino, String>,
        persist: bool,
    ) -> bool {
        match outcome {
            Err(msg) => {
                *slot.status.lock().unwrap() = SlotStatus::Failed(msg);
                false
            }
            Ok(fitted) => {
                if persist {
                    if let Some(dir) = &self.model_dir {
                        let path = dir.join(format!("model-{}.kamino", slot.id));
                        match crate::snapshot::save_fitted(&fitted, &path) {
                            Ok(()) => {
                                self.commit_to_manifest(slot.id, &path);
                                slot.set_snapshot_path(path);
                            }
                            Err(e) => {
                                eprintln!("kamino-serve: snapshot of model {} failed: {e}", slot.id)
                            }
                        }
                    }
                }
                let meta = ModelMeta::new(&fitted);
                {
                    let mut resident = slot.resident.lock().unwrap();
                    *resident = Some(Resident {
                        fitted: Box::new(fitted),
                        pool: SamplePool::new(self.pool_cfg),
                    });
                    *slot.status.lock().unwrap() = SlotStatus::Ready(meta);
                }
                self.touch(slot);
                self.evict_over_capacity();
                true
            }
        }
    }

    /// Makes the slot's model resident, loading its snapshot if needed.
    /// Blocking (worker threads only — the event loop must not call
    /// this). Returns the error text for a 4xx/5xx reply on failure.
    pub fn ensure_resident(&self, slot: &Arc<ModelSlot>) -> Result<(), String> {
        {
            let mut resident = slot.resident.lock().unwrap();
            if resident.is_some() {
                return Ok(());
            }
            match &*slot.status.lock().unwrap() {
                SlotStatus::Fitting => return Err("model is still fitting".into()),
                SlotStatus::Failed(msg) => return Err(format!("model failed to fit: {msg}")),
                SlotStatus::Ready(_) | SlotStatus::Unloaded(_) => {}
            }
            let Some(path) = slot.snapshot_path() else {
                return Err("model has no snapshot to load".into());
            };
            let fitted =
                load_fitted(&path).map_err(|e| format!("loading model {} failed: {e}", slot.id))?;
            let meta = ModelMeta::new(&fitted);
            *resident = Some(Resident {
                fitted: Box::new(fitted),
                pool: SamplePool::new(self.pool_cfg),
            });
            *slot.status.lock().unwrap() = SlotStatus::Ready(meta);
            self.loads.fetch_add(1, Ordering::Relaxed);
        }
        self.touch(slot);
        self.evict_over_capacity();
        Ok(())
    }

    /// Evicts least-recently-touched unpinned models until at most
    /// `max_resident` remain. Eviction rewinds the pool, rewrites the
    /// snapshot with the rewound RNG cursor, and drops the model.
    /// Models that cannot be persisted (no path and no model dir) and
    /// models whose mutex is busy are skipped — residency is a soft
    /// bound under contention, never a correctness risk.
    pub fn evict_over_capacity(&self) {
        if self.max_resident == 0 {
            return;
        }
        loop {
            let mut resident: Vec<(u64, Arc<ModelSlot>)> = self
                .list()
                .into_iter()
                .filter(|s| matches!(&*s.status.lock().unwrap(), SlotStatus::Ready(_)))
                .map(|s| (s.last_touch.load(Ordering::Relaxed), s))
                .collect();
            if resident.len() <= self.max_resident {
                return;
            }
            resident.sort_by_key(|(touch, s)| (*touch, s.id));
            let mut evicted_one = false;
            for (_, slot) in resident {
                if slot.pins.load(Ordering::Acquire) > 0 {
                    continue;
                }
                if self.try_evict(&slot) {
                    evicted_one = true;
                    break;
                }
            }
            if !evicted_one {
                return;
            }
        }
    }

    /// Attempts to evict one slot. `false` when it is busy, pinned, or
    /// unpersistable.
    fn try_evict(&self, slot: &Arc<ModelSlot>) -> bool {
        // try_lock: an actively sampling model is busy by definition —
        // skip it rather than stall whoever triggered the eviction
        let Ok(mut resident) = slot.resident.try_lock() else {
            return false;
        };
        if slot.pins.load(Ordering::Acquire) > 0 {
            return false;
        }
        let Some(r) = resident.as_mut() else {
            return false;
        };
        let path = match slot.snapshot_path() {
            Some(p) => p,
            None => match &self.model_dir {
                Some(dir) => dir.join(format!("model-{}.kamino", slot.id)),
                None => return false,
            },
        };
        // discard speculation and persist the canonical cursor so the
        // reload resumes the observable stream bit-exactly
        let Resident { fitted, pool } = r;
        pool.rewind(fitted);
        slot.pool_depth.store(0, Ordering::Relaxed);
        let bytes = crate::snapshot::encode_fitted(fitted);
        if let Err(e) = write_snapshot_bytes(&bytes, &path) {
            eprintln!(
                "kamino-serve: evicting model {} failed to persist: {e}",
                slot.id
            );
            return false;
        }
        let meta = slot.status.lock().unwrap().meta();
        *resident = None;
        self.commit_to_manifest(slot.id, &path);
        slot.set_snapshot_path(path);
        *slot.status.lock().unwrap() = SlotStatus::Unloaded(meta);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A consistent snapshot of the registry's numbers for `/metrics`.
    pub fn stats(&self) -> RegistryStats {
        let slots = self.list();
        let mut resident = 0;
        let mut pool_depths = Vec::with_capacity(slots.len());
        for s in &slots {
            if matches!(&*s.status.lock().unwrap(), SlotStatus::Ready(_)) {
                resident += 1;
            }
            pool_depths.push((s.id, s.pool_depth.load(Ordering::Relaxed)));
        }
        RegistryStats {
            total: slots.len(),
            resident,
            max_resident: self.max_resident,
            pool_depths,
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            ledger_replays: self.ledger_replays.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            ledger_epsilon: f64::from_bits(self.ledger_epsilon_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Extracts the id from a server-written snapshot name
/// (`model-{id}.kamino`).
fn id_from_snapshot_name(path: &Path) -> Option<u64> {
    path.file_stem()?
        .to_str()?
        .strip_prefix("model-")?
        .parse()
        .ok()
}
