//! The synthesis server: a std-`TcpListener` accept loop feeding a scoped
//! thread pool, serving fitted Kamino models over HTTP/1.1.
//!
//! ## Endpoints
//!
//! | Method + path | Purpose |
//! |---|---|
//! | `POST /fit` | start an async fit job; returns a model id immediately |
//! | `GET /models` | list models and their states |
//! | `GET /models/{id}` | fit status, achieved ε, parameters, timings |
//! | `POST /models/{id}/synthesize?n=..&batch=..&format=csv\|json` | stream rows (chunked) |
//! | `POST /models/{id}/snapshot` | persist the model to the `--model-dir` |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus text exposition: counters, rows/sec, latency histograms, DP budget ledger |
//! | `POST /debug/trace` | chrome://tracing JSON of recorded spans and events |
//! | `POST /shutdown` | graceful stop: drain connections, exit `run` |
//!
//! ## Privacy
//!
//! The privacy budget is spent exactly once, inside the fit job
//! ([`kamino_core::fit_kamino`]). Everything `/synthesize` does afterwards
//! is post-processing of the fitted model: any number of rows, for any
//! number of concurrent clients, is covered by the ε reported in
//! `GET /models/{id}` — the server never re-touches the private input.
//! Concurrent `/synthesize` requests against one model serialize on the
//! model's mutex per batch (the session RNG advances under the lock), so
//! clients interleave without data races and without budget re-spend.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use kamino_core::{fit_kamino, FittedKamino, KaminoConfig};
use kamino_data::{AttrKind, Instance, Schema, Value};
use kamino_datasets::Corpus;
use kamino_dp::Budget;
use kamino_obs::{clock, metrics::LATENCY_BUCKETS_S, ObsHandle};

use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, write_response, ReadError, Request,
};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::snapshot::{load_fitted, save_fitted};

/// How long a worker waits on an idle keep-alive connection before
/// closing it. Bounds shutdown latency: no connection can hold a worker
/// longer than this once draining starts.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Caps on `/synthesize` query parameters.
const MAX_SYNTH_ROWS: usize = 10_000_000;
const MAX_BATCH: usize = 100_000;
/// Cap on `/fit` input rows (the corpus generators are in-memory).
const MAX_FIT_ROWS: usize = 200_000;
/// Cap on concurrently *training* fit jobs. Connections are bounded by
/// the worker pool, but each fit spawns its own DP-SGD thread — without
/// a cap, a burst of `POST /fit` could exhaust CPU and memory and starve
/// `/synthesize`. Excess requests get `429` and retry.
const MAX_CONCURRENT_FITS: u64 = 4;

/// Server configuration (mirrors the binary's flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral
    /// port — see [`Server::local_addr`]).
    pub listen: String,
    /// Directory for `.kamino` snapshots: loaded at boot, written by fit
    /// jobs and `POST /models/{id}/snapshot`.
    pub model_dir: Option<PathBuf>,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Observability handle shared by every request, fit job and model.
    /// Enabled by default — the server is the intended consumer of
    /// `/metrics` and `/debug/trace` — and strictly off the determinism
    /// contract: synthesized bytes are identical either way.
    pub obs: ObsHandle,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:7878".into(),
            model_dir: None,
            threads: 4,
            obs: ObsHandle::enabled(),
        }
    }
}

/// One model slot in the registry.
struct ModelEntry {
    id: u64,
    state: Mutex<ModelState>,
}

enum ModelState {
    Fitting,
    Ready(Box<FittedKamino>),
    Failed(String),
}

impl ModelState {
    fn name(&self) -> &'static str {
        match self {
            ModelState::Fitting => "fitting",
            ModelState::Ready(_) => "ready",
            ModelState::Failed(_) => "failed",
        }
    }
}

struct AppState {
    models: Mutex<BTreeMap<u64, Arc<ModelEntry>>>,
    next_id: AtomicU64,
    metrics: Metrics,
    model_dir: Option<PathBuf>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Fit jobs currently training (bounded by [`MAX_CONCURRENT_FITS`]).
    active_fits: AtomicU64,
    obs: ObsHandle,
}

impl AppState {
    fn entry(&self, id: u64) -> Option<Arc<ModelEntry>> {
        self.models.lock().unwrap().get(&id).cloned()
    }
}

/// Extracts the id from a server-written snapshot name
/// (`model-{id}.kamino`).
fn id_from_snapshot_name(path: &std::path::Path) -> Option<u64> {
    path.file_stem()?
        .to_str()?
        .strip_prefix("model-")?
        .parse()
        .ok()
}

fn insert_loaded(state: &AppState, id: u64, fitted: FittedKamino, path: &std::path::Path) {
    let entry = Arc::new(ModelEntry {
        id,
        state: Mutex::new(ModelState::Ready(Box::new(fitted))),
    });
    state.models.lock().unwrap().insert(id, entry);
    println!("kamino-serve: loaded {} as model {id}", path.display());
}

/// A bound (but not yet running) synthesis server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    threads: usize,
}

impl Server {
    /// Binds the listen address and loads any snapshots found in the
    /// model directory.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState {
            models: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            metrics: Metrics::new(),
            model_dir: cfg.model_dir.clone(),
            shutdown: AtomicBool::new(false),
            addr,
            active_fits: AtomicU64::new(0),
            obs: cfg.obs.clone(),
        });
        if let Some(dir) = &cfg.model_dir {
            std::fs::create_dir_all(dir)?;
            let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "kamino"))
                .collect();
            paths.sort();
            // snapshots written by this server are named `model-{id}.kamino`;
            // keep those ids stable across restarts so a later fit's
            // auto-persist can never collide with (and overwrite) an
            // existing unrelated snapshot. Foreign names get the next free
            // id after every recognized one.
            let mut foreign = Vec::new();
            for path in paths {
                match load_fitted(&path) {
                    Ok(fitted) => match id_from_snapshot_name(&path) {
                        Some(id) if !state.models.lock().unwrap().contains_key(&id) => {
                            insert_loaded(&state, id, fitted, &path);
                        }
                        _ => foreign.push((path, fitted)),
                    },
                    Err(e) => eprintln!("kamino-serve: skipping {}: {e}", path.display()),
                }
            }
            let max_id = state
                .models
                .lock()
                .unwrap()
                .keys()
                .next_back()
                .copied()
                .unwrap_or(0);
            state.next_id.store(max_id + 1, Ordering::Relaxed);
            for (path, fitted) in foreign {
                let id = state.next_id.fetch_add(1, Ordering::Relaxed);
                insert_loaded(&state, id, fitted, &path);
            }
        }
        Ok(Server {
            listener,
            state,
            threads: cfg.threads.max(1),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until `POST /shutdown`: the acceptor stops, in-flight
    /// connections drain (bounded by `IDLE_READ_TIMEOUT`), fit jobs
    /// finish, and `run` returns.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            threads,
        } = self;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        thread::scope(|scope| {
            for _ in 0..threads {
                let rx = &rx;
                let state = &state;
                scope.spawn(move || loop {
                    let next = rx.lock().unwrap().recv();
                    let Ok(stream) = next else { break };
                    state
                        .metrics
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = handle_connection(stream, state, scope);
                    state
                        .metrics
                        .open_connections
                        .fetch_sub(1, Ordering::Relaxed);
                });
            }
            for conn in listener.incoming() {
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    // a send can only fail after every worker exited, which
                    // cannot happen while we still hold `tx`
                    let _ = tx.send(stream);
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Serves one connection's keep-alive loop.
fn handle_connection<'scope>(
    stream: TcpStream,
    state: &'scope Arc<AppState>,
    scope: &'scope thread::Scope<'scope, '_>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        match read_request(&mut reader) {
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return Ok(()),
            Err(ReadError::Bad(status)) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                observe_request(state, "unparsed", "-", status, 0);
                let body = Json::obj([("error", Json::Str(status.to_string()))]).to_string();
                write_response(&mut out, status, "application/json", body.as_bytes(), true)?;
                return Ok(());
            }
            Ok(req) => {
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let close = req.wants_close() || state.shutdown.load(Ordering::Acquire);
                let label = route_label(&req);
                let enabled = state.obs.is_enabled();
                let t0 = if enabled { clock::now_nanos() } else { 0 };
                let mut span = state.obs.span("serve.request");
                if span.is_active() {
                    span.arg("route", label.to_string());
                    span.arg("method", req.method.clone());
                }
                let status = route(&req, &mut out, state, scope, close)?;
                if span.is_active() {
                    span.arg("status", status.to_string());
                }
                drop(span);
                if enabled {
                    let dur_ns = clock::now_nanos().saturating_sub(t0);
                    observe_request(state, label, &req.method, status, dur_ns);
                }
                // re-check the flag: this very request may have been the
                // shutdown (whose response promised `connection: close`)
                if close || state.shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
        }
    }
}

/// Writes a JSON response and echoes the status line back so the
/// dispatcher can label the request-latency histogram with it.
fn respond_json<W: Write>(
    w: &mut W,
    state: &AppState,
    status: &'static str,
    body: Json,
    close: bool,
) -> io::Result<&'static str> {
    if !status.starts_with('2') {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    }
    write_response(
        w,
        status,
        "application/json",
        body.to_string().as_bytes(),
        close,
    )?;
    Ok(status)
}

fn err_json(msg: &str) -> Json {
    Json::obj([("error", Json::Str(msg.to_string()))])
}

/// Normalized route label for metrics and spans: model ids collapse to
/// `{id}` so the label set stays bounded no matter how many models the
/// server has fitted.
fn route_label(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["shutdown"] => "/shutdown",
        ["fit"] => "/fit",
        ["models"] => "/models",
        ["models", _] => "/models/{id}",
        ["models", _, "synthesize"] => "/models/{id}/synthesize",
        ["models", _, "snapshot"] => "/models/{id}/snapshot",
        ["debug", "trace"] => "/debug/trace",
        _ => "other",
    }
}

/// Feeds one finished request into `kamino_http_request_duration_seconds`.
fn observe_request(state: &AppState, route: &str, method: &str, status: &str, dur_ns: u64) {
    if !state.obs.is_enabled() {
        return;
    }
    let code = status.split(' ').next().unwrap_or(status);
    state
        .obs
        .histogram(
            "kamino_http_request_duration_seconds",
            &[("method", method), ("route", route), ("status", code)],
            LATENCY_BUCKETS_S,
        )
        .observe(dur_ns as f64 / 1e9);
}

/// Dispatches one request; returns the status line it served.
fn route<'scope>(
    req: &Request,
    out: &mut TcpStream,
    state: &'scope Arc<AppState>,
    scope: &'scope thread::Scope<'scope, '_>,
    close: bool,
) -> io::Result<&'static str> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let models = state.models.lock().unwrap().len();
            let body = Json::obj([
                ("status", Json::Str("ok".into())),
                ("models", Json::Num(models as f64)),
                ("uptime_ms", Json::Num(state.metrics.uptime_ms() as f64)),
            ]);
            respond_json(out, state, "200 OK", body, close)
        }
        ("GET", ["metrics"]) => {
            let (open, ready) = {
                let models = state.models.lock().unwrap();
                let ready = models
                    .values()
                    .filter(|e| matches!(*e.state.lock().unwrap(), ModelState::Ready(_)))
                    .count();
                (models.len(), ready)
            };
            let body = state.metrics.render_prometheus(&state.obs, open, ready);
            write_response(
                out,
                "200 OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
                close,
            )?;
            Ok("200 OK")
        }
        ("POST", ["debug", "trace"]) => {
            let body = state.obs.chrome_trace_json();
            write_response(out, "200 OK", "application/json", body.as_bytes(), close)?;
            Ok("200 OK")
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::Release);
            let body = Json::obj([("status", Json::Str("shutting down".into()))]);
            respond_json(out, state, "200 OK", body, true)?;
            // unblock the acceptor so it observes the flag
            let _ = TcpStream::connect(state.addr);
            Ok("200 OK")
        }
        ("POST", ["fit"]) => handle_fit(req, out, state, scope, close),
        ("GET", ["models"]) => {
            let models = state.models.lock().unwrap();
            let list: Vec<Json> = models
                .values()
                .map(|e| {
                    Json::obj([
                        ("model_id", Json::Num(e.id as f64)),
                        ("status", Json::Str(e.state.lock().unwrap().name().into())),
                    ])
                })
                .collect();
            respond_json(out, state, "200 OK", Json::Arr(list), close)
        }
        ("GET", ["models", id]) => match id.parse::<u64>().ok().and_then(|id| state.entry(id)) {
            None => respond_json(
                out,
                state,
                "404 Not Found",
                err_json("no such model"),
                close,
            ),
            Some(entry) => {
                let body = model_info(&entry);
                respond_json(out, state, "200 OK", body, close)
            }
        },
        ("POST", ["models", id, "synthesize"]) => {
            match id.parse::<u64>().ok().and_then(|id| state.entry(id)) {
                None => respond_json(
                    out,
                    state,
                    "404 Not Found",
                    err_json("no such model"),
                    close,
                ),
                Some(entry) => handle_synthesize(req, out, state, &entry, close),
            }
        }
        ("POST", ["models", id, "snapshot"]) => {
            match id.parse::<u64>().ok().and_then(|id| state.entry(id)) {
                None => respond_json(
                    out,
                    state,
                    "404 Not Found",
                    err_json("no such model"),
                    close,
                ),
                Some(entry) => handle_snapshot(out, state, &entry, close),
            }
        }
        (_, ["healthz" | "metrics" | "shutdown" | "fit" | "models" | "debug", ..]) => respond_json(
            out,
            state,
            "405 Method Not Allowed",
            err_json("method not allowed on this path"),
            close,
        ),
        _ => respond_json(out, state, "404 Not Found", err_json("unknown path"), close),
    }
}

/// The request surface of `POST /fit`.
struct FitSpec {
    corpus: Corpus,
    rows: usize,
    data_seed: u64,
    cfg: KaminoConfig,
    persist: bool,
}

fn parse_fit_spec(body: &Json, model_dir_set: bool) -> Result<FitSpec, String> {
    let corpus = match body.get("corpus").and_then(Json::as_str).unwrap_or("adult") {
        "adult" => Corpus::Adult,
        "br2000" => Corpus::Br2000,
        "tax" => Corpus::Tax,
        "tpch" => Corpus::TpcH,
        other => return Err(format!("unknown corpus `{other}`")),
    };
    let rows = body
        .get("rows")
        .map(|v| v.as_u64().ok_or("`rows` must be a non-negative integer"))
        .transpose()?
        .unwrap_or(200) as usize;
    if rows == 0 || rows > MAX_FIT_ROWS {
        return Err(format!("`rows` must be in [1, {MAX_FIT_ROWS}]"));
    }
    let non_private = body
        .get("non_private")
        .and_then(Json::as_bool)
        .unwrap_or(false)
        || body.get("epsilon").and_then(Json::as_str) == Some("inf");
    let budget = if non_private {
        Budget::non_private()
    } else {
        let epsilon = body.get("epsilon").and_then(Json::as_f64).unwrap_or(1.0);
        let delta = body.get("delta").and_then(Json::as_f64).unwrap_or(1e-6);
        if epsilon <= 0.0 {
            return Err("`epsilon` must be positive".into());
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err("`delta` must be in (0, 1)".into());
        }
        Budget::new(epsilon, delta)
    };
    let mut cfg = KaminoConfig::new(budget);
    if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
        cfg.seed = seed;
    }
    if let Some(shards) = body.get("shards").and_then(Json::as_u64) {
        if shards == 0 || shards > 64 {
            return Err("`shards` must be in [1, 64]".into());
        }
        cfg.shards = shards as usize;
    }
    if let Some(scale) = body.get("train_scale").and_then(Json::as_f64) {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err("`train_scale` must be in (0, 1]".into());
        }
        cfg.train_scale = scale;
    }
    if let Some(ratio) = body.get("mcmc_ratio").and_then(Json::as_f64) {
        if !(0.0..=1.0).contains(&ratio) {
            return Err("`mcmc_ratio` must be in [0, 1]".into());
        }
        cfg.mcmc_ratio = ratio;
    }
    let persist = body
        .get("persist")
        .and_then(Json::as_bool)
        .unwrap_or(model_dir_set);
    Ok(FitSpec {
        corpus,
        rows,
        data_seed: body.get("data_seed").and_then(Json::as_u64).unwrap_or(1),
        cfg,
        persist,
    })
}

fn handle_fit<'scope>(
    req: &Request,
    out: &mut TcpStream,
    state: &'scope Arc<AppState>,
    scope: &'scope thread::Scope<'scope, '_>,
    close: bool,
) -> io::Result<&'static str> {
    let text = String::from_utf8_lossy(&req.body);
    let body = if req.body.is_empty() {
        Json::obj([])
    } else {
        match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                return respond_json(
                    out,
                    state,
                    "400 Bad Request",
                    err_json(&format!("invalid JSON body: {e}")),
                    close,
                )
            }
        }
    };
    let mut spec = match parse_fit_spec(&body, state.model_dir.is_some()) {
        Ok(s) => s,
        Err(e) => return respond_json(out, state, "400 Bad Request", err_json(&e), close),
    };
    // fit phases, per-column sample spans and the DP budget ledger all
    // land in the server's shared obs sinks
    spec.cfg.obs = state.obs.clone();

    // admission control: claim a training slot or turn the burst away
    let claimed = state
        .active_fits
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < MAX_CONCURRENT_FITS).then_some(n + 1)
        })
        .is_ok();
    if !claimed {
        return respond_json(
            out,
            state,
            "429 Too Many Requests",
            err_json(&format!(
                "{MAX_CONCURRENT_FITS} fit jobs already training; retry shortly"
            )),
            close,
        );
    }

    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let entry = Arc::new(ModelEntry {
        id,
        state: Mutex::new(ModelState::Fitting),
    });
    state.models.lock().unwrap().insert(id, entry.clone());
    state.metrics.fits_started.fetch_add(1, Ordering::Relaxed);

    let job_state = Arc::clone(state);
    scope.spawn(move || fit_job(job_state, entry, spec));

    let body = Json::obj([
        ("model_id", Json::Num(id as f64)),
        ("status", Json::Str("fitting".into())),
        ("poll", Json::Str(format!("/models/{id}"))),
    ]);
    respond_json(out, state, "202 Accepted", body, close)
}

/// The async fit job: the only code path that touches private data. A
/// panic inside the pipeline (e.g. an infeasible budget) marks the model
/// `failed` instead of taking a worker down.
fn fit_job(state: Arc<AppState>, entry: Arc<ModelEntry>, spec: FitSpec) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let d = spec.corpus.generate(spec.rows, spec.data_seed);
        fit_kamino(&d.schema, &d.instance, &d.dcs, &spec.cfg)
    }));
    let new_state = match result {
        Ok(fitted) => {
            if spec.persist {
                if let Some(dir) = &state.model_dir {
                    let path = dir.join(format!("model-{}.kamino", entry.id));
                    if let Err(e) = save_fitted(&fitted, &path) {
                        eprintln!("kamino-serve: snapshot of model {} failed: {e}", entry.id);
                    }
                }
            }
            state.metrics.fits_done.fetch_add(1, Ordering::Relaxed);
            ModelState::Ready(Box::new(fitted))
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "fit panicked".into());
            ModelState::Failed(msg)
        }
    };
    *entry.state.lock().unwrap() = new_state;
    state.active_fits.fetch_sub(1, Ordering::AcqRel);
}

fn duration_ms(d: std::time::Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

fn epsilon_json(eps: f64) -> Json {
    if eps.is_finite() {
        Json::Num(eps)
    } else {
        Json::Str("inf".into())
    }
}

fn model_info(entry: &ModelEntry) -> Json {
    let guard = entry.state.lock().unwrap();
    let mut fields = vec![
        ("model_id", Json::Num(entry.id as f64)),
        ("status", Json::Str(guard.name().into())),
    ];
    match &*guard {
        ModelState::Fitting => {}
        ModelState::Failed(msg) => fields.push(("error", Json::Str(msg.clone()))),
        ModelState::Ready(f) => {
            fields.push(("achieved_epsilon", epsilon_json(f.achieved_epsilon())));
            fields.push(("delta", Json::Num(f.config().budget.delta)));
            fields.push(("n_input", Json::Num(f.n_input() as f64)));
            fields.push(("attributes", Json::Num(f.schema().len() as f64)));
            fields.push(("dcs", Json::Num(f.dcs().len() as f64)));
            fields.push(("shards", Json::Num(f.config().shards as f64)));
            fields.push((
                "sequence",
                Json::Arr(f.sequence.iter().map(|&i| Json::Num(i as f64)).collect()),
            ));
            fields.push((
                "params",
                Json::obj([
                    ("sigma_g", Json::Num(f.params.sigma_g)),
                    ("sigma_d", Json::Num(f.params.sigma_d)),
                    ("sigma_w", Json::Num(f.params.sigma_w)),
                    ("iterations", Json::Num(f.params.t as f64)),
                    ("batch", Json::Num(f.params.b as f64)),
                    ("clip", Json::Num(f.params.clip)),
                ]),
            ));
            fields.push((
                "timings_ms",
                Json::obj([
                    ("sequencing", duration_ms(f.timings.sequencing)),
                    ("training", duration_ms(f.timings.training)),
                    ("dc_weights", duration_ms(f.timings.dc_weights)),
                    ("sampling", duration_ms(f.timings.sampling)),
                    ("sample_fill", duration_ms(f.timings.sample_fill)),
                    ("sample_repair", duration_ms(f.timings.sample_repair)),
                    ("sample_mcmc", duration_ms(f.timings.sample_mcmc)),
                ]),
            ));
        }
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Formats a batch as NDJSON: one object per row per line.
fn ndjson_rows(schema: &Schema, inst: &Instance) -> String {
    let mut out = String::with_capacity(inst.n_rows() * schema.len() * 16);
    for i in 0..inst.n_rows() {
        let obj = Json::Obj(
            (0..schema.len())
                .map(|j| {
                    let attr = schema.attr(j);
                    let v = match (inst.value(i, j), &attr.kind) {
                        (Value::Cat(c), AttrKind::Categorical { .. }) => {
                            Json::Str(attr.label(c).unwrap_or("?").to_string())
                        }
                        (Value::Num(x), _) => Json::Num(x),
                        (Value::Cat(c), _) => Json::Num(c as f64),
                    };
                    (attr.name.clone(), v)
                })
                .collect(),
        );
        out.push_str(&obj.to_string());
        out.push('\n');
    }
    out
}

fn handle_synthesize(
    req: &Request,
    out: &mut TcpStream,
    state: &Arc<AppState>,
    entry: &ModelEntry,
    close: bool,
) -> io::Result<&'static str> {
    let n = req.query_usize("n").unwrap_or(100);
    if n == 0 || n > MAX_SYNTH_ROWS {
        return respond_json(
            out,
            state,
            "400 Bad Request",
            err_json(&format!("`n` must be in [1, {MAX_SYNTH_ROWS}]")),
            close,
        );
    }
    let batch = req
        .query_usize("batch")
        .unwrap_or(1_000)
        .clamp(1, MAX_BATCH);
    let format = req.query.get("format").map(String::as_str).unwrap_or("csv");
    if format != "csv" && format != "json" {
        return respond_json(
            out,
            state,
            "400 Bad Request",
            err_json("`format` must be `csv` or `json`"),
            close,
        );
    }

    // refuse early (without holding the lock across the stream) if the
    // model is not ready; the schema is cloned for header formatting
    let schema = {
        let guard = entry.state.lock().unwrap();
        match &*guard {
            ModelState::Ready(f) => f.schema().clone(),
            ModelState::Fitting => {
                return respond_json(
                    out,
                    state,
                    "409 Conflict",
                    err_json("model is still fitting"),
                    close,
                )
            }
            ModelState::Failed(msg) => {
                return respond_json(
                    out,
                    state,
                    "409 Conflict",
                    err_json(&format!("model failed to fit: {msg}")),
                    close,
                )
            }
        }
    };

    // CSV formatting is kamino_data::csv's — one implementation, same
    // validation (comma-free labels) as the exporter path
    let header = if format == "csv" {
        match kamino_data::csv::header_line(&schema) {
            Ok(h) => Some(h),
            Err(e) => {
                return respond_json(
                    out,
                    state,
                    "500 Internal Server Error",
                    err_json(&format!("schema is not CSV-serializable: {e}")),
                    close,
                )
            }
        }
    } else {
        None
    };
    let content_type = if format == "csv" {
        "text/csv"
    } else {
        "application/x-ndjson"
    };
    start_chunked(out, "200 OK", content_type)?;
    if let Some(header) = header {
        write_chunk(out, header.as_bytes())?;
    }
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(batch);
        // sample under the model lock (the RNG stream advances), format
        // and write outside it so concurrent clients interleave batches
        let inst = {
            let mut guard = entry.state.lock().unwrap();
            match &mut *guard {
                ModelState::Ready(f) => f.sample(take),
                // a model cannot leave `Ready` today, but stay defensive
                _ => break,
            }
        };
        state.metrics.add_rows(inst.n_rows() as u64);
        let text = if format == "csv" {
            match kamino_data::csv::rows_text(&schema, &inst) {
                Ok(t) => t,
                // unreachable for rows a fitted model sampled from its own
                // schema; truncate the stream rather than emit garbage
                Err(e) => {
                    eprintln!("kamino-serve: CSV formatting failed mid-stream: {e}");
                    break;
                }
            }
        } else {
            ndjson_rows(&schema, &inst)
        };
        write_chunk(out, text.as_bytes())?;
        remaining -= take;
    }
    finish_chunked(out)?;
    Ok("200 OK")
}

fn handle_snapshot(
    out: &mut TcpStream,
    state: &Arc<AppState>,
    entry: &ModelEntry,
    close: bool,
) -> io::Result<&'static str> {
    let Some(dir) = &state.model_dir else {
        return respond_json(
            out,
            state,
            "409 Conflict",
            err_json("server started without --model-dir"),
            close,
        );
    };
    let path = dir.join(format!("model-{}.kamino", entry.id));
    // encode under the model lock (memory only), write to disk outside
    // it — concurrent /synthesize batches stall for the serialization,
    // not for the disk
    let bytes = {
        let guard = entry.state.lock().unwrap();
        match &*guard {
            ModelState::Ready(f) => crate::snapshot::encode_fitted(f),
            _ => {
                drop(guard);
                return respond_json(
                    out,
                    state,
                    "409 Conflict",
                    err_json("model not ready"),
                    close,
                );
            }
        }
    };
    match crate::snapshot::write_snapshot_bytes(&bytes, &path) {
        Ok(()) => {
            let body = Json::obj([
                ("status", Json::Str("saved".into())),
                ("path", Json::Str(path.display().to_string())),
            ]);
            respond_json(out, state, "200 OK", body, close)
        }
        Err(e) => respond_json(
            out,
            state,
            "500 Internal Server Error",
            err_json(&format!("snapshot failed: {e}")),
            close,
        ),
    }
}
