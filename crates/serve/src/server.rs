//! The synthesis server: an epoll event loop feeding a worker pool,
//! serving fitted Kamino models over HTTP/1.1.
//!
//! ## Endpoints
//!
//! | Method + path | Purpose |
//! |---|---|
//! | `POST /fit` | start an async fit job; returns a model id immediately |
//! | `GET /models` | list models and their states |
//! | `GET /models/{id}` | fit status, achieved ε, parameters, timings |
//! | `POST /models/{id}/synthesize?n=..&batch=..&format=csv\|json` | stream rows (chunked) |
//! | `POST /models/{id}/snapshot` | persist the model to the `--model-dir` |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus text exposition: counters, rows/sec, latency histograms, pool/LRU gauges, DP budget ledger |
//! | `POST /debug/trace` | chrome://tracing JSON of recorded spans and events |
//! | `POST /shutdown` | graceful stop: drain in-flight responses, exit `run` |
//!
//! ## Architecture
//!
//! One thread runs the readiness-driven event loop ([`crate::sys`] +
//! connection state machines in the `event_loop` module); `--threads`
//! workers execute the CPU-bound jobs it dispatches — fits, snapshot
//! loads, on-demand sample batches and pool refills — and report back
//! through a completion queue that wakes the poller. The event loop
//! itself never blocks on a model mutex: pooled batches are drained via
//! `try_lock`, and anything heavier becomes a `Job`.
//!
//! ## Privacy
//!
//! The privacy budget is spent exactly once, inside the fit job
//! ([`kamino_core::fit_kamino`]). Everything `/synthesize` does
//! afterwards — direct draws, pooled pre-sampling, eviction and reload —
//! is post-processing of the fitted model: any number of rows, for any
//! number of concurrent clients, is covered by the ε reported in
//! `GET /models/{id}`. Concurrent `/synthesize` requests against one
//! model serialize on the model's mutex per batch (the session RNG
//! advances under the lock), so clients interleave without data races
//! and without budget re-spend.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use kamino_core::{fit_kamino, KaminoConfig};
use kamino_datasets::Corpus;
use kamino_dp::Budget;
use kamino_obs::{metrics::LATENCY_BUCKETS_S, ObsHandle};

use crate::http::Request;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::{Format, PoolConfig};
use crate::registry::{ModelSlot, PinGuard, Registry, SlotStatus};
use crate::sys;

/// How long an idle keep-alive connection may sit without a request
/// before the event loop closes it. Bounds shutdown latency: no idle
/// connection outlives draining by more than this.
pub(crate) const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a connection with pending response bytes may make zero
/// write progress before it is dropped (slow-loris guard; clients that
/// keep reading — however slowly — never hit it).
pub(crate) const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Caps on `/synthesize` query parameters.
const MAX_SYNTH_ROWS: usize = 10_000_000;
const MAX_BATCH: usize = 100_000;
/// Cap on `/fit` input rows (the corpus generators are in-memory).
const MAX_FIT_ROWS: usize = 200_000;
/// Cap on concurrently *training* fit jobs. Without a cap, a burst of
/// `POST /fit` could exhaust CPU and memory and starve `/synthesize`.
/// Excess requests get `429` and retry.
const MAX_CONCURRENT_FITS: u64 = 4;

/// Server configuration (mirrors the binary's flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral
    /// port — see [`Server::local_addr`]).
    pub listen: String,
    /// Directory for `.kamino` snapshots: registered lazily at boot,
    /// written by fit jobs, `POST /models/{id}/snapshot` and LRU
    /// eviction.
    pub model_dir: Option<PathBuf>,
    /// Worker threads for CPU-bound jobs (fits, loads, sample batches,
    /// pool refills).
    pub threads: usize,
    /// Most models resident in memory at once (`0` = unbounded). The
    /// least-recently-used unpinned model is evicted to its snapshot.
    pub max_models: usize,
    /// Pre-sampled batches kept per model (`0` disables pooling).
    pub pool_batches: usize,
    /// Rows per pooled batch; `/synthesize` requests streaming in
    /// chunks of exactly this size are served from the pool.
    pub pool_rows: usize,
    /// Per-request deadline. A request that cannot complete within it is
    /// answered `503` + `Retry-After`; a chunked stream already under
    /// way is terminated early with a `kamino-trailer: deadline-expired`
    /// trailer. [`Duration::ZERO`] (the default) disables deadlines.
    pub request_timeout: Duration,
    /// Bound on queued worker jobs. While the queue holds this many,
    /// new `/synthesize` and `/models/{id}/snapshot` work is shed with
    /// `429` + `Retry-After` (in-flight streams keep their lane), and
    /// pool speculation pauses once the queue is half full. `0` (the
    /// default) disables shedding.
    pub max_queue: usize,
    /// Observability handle shared by every request, fit job and model.
    /// Enabled by default — the server is the intended consumer of
    /// `/metrics` and `/debug/trace` — and strictly off the determinism
    /// contract: synthesized bytes are identical either way.
    pub obs: ObsHandle,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:7878".into(),
            model_dir: None,
            threads: 4,
            max_models: 0,
            pool_batches: 4,
            pool_rows: 1_000,
            request_timeout: Duration::ZERO,
            max_queue: 0,
            obs: ObsHandle::enabled(),
        }
    }
}

/// Everything the event loop and the workers share.
pub(crate) struct AppState {
    pub registry: Registry,
    pub metrics: Metrics,
    pub obs: ObsHandle,
    pub addr: SocketAddr,
    /// Set by `POST /shutdown`: stop accepting, drain, exit.
    pub draining: AtomicBool,
    /// Fit jobs currently training (bounded by [`MAX_CONCURRENT_FITS`]).
    pub active_fits: AtomicU64,
    /// Per-request deadline in nanoseconds (0 = off).
    pub request_timeout_ns: u64,
    /// Queued-job bound for load shedding (0 = off).
    pub max_queue: u64,
}

/// CPU-bound work the event loop hands to the worker pool.
pub(crate) enum Job {
    /// Train a model (the only code path that touches private data).
    Fit { slot: Arc<ModelSlot>, spec: FitSpec },
    /// Produce the next batch of a `/synthesize` stream (loading the
    /// model first when necessary).
    Batch {
        token: u64,
        gen: u64,
        slot: Arc<ModelSlot>,
        rows: usize,
        format: Format,
        need_header: bool,
    },
    /// Top a model's sample pool back up.
    Refill { slot: Arc<ModelSlot> },
    /// Encode and persist a model snapshot.
    Snapshot {
        token: u64,
        gen: u64,
        slot: Arc<ModelSlot>,
    },
}

/// A batch produced by a worker for a streaming connection.
pub(crate) struct BatchOut {
    pub text: Arc<str>,
    pub rows: u64,
    /// CSV header line, present on the first batch of a stream whose
    /// model had to load before its schema was known.
    pub header: Option<String>,
}

/// Worker → event loop results, matched to connections by (token, gen).
pub(crate) enum Completion {
    Batch {
        token: u64,
        gen: u64,
        result: Result<BatchOut, (&'static str, String)>,
    },
    Snapshot {
        token: u64,
        gen: u64,
        result: Result<PathBuf, (&'static str, String)>,
    },
}

/// The completion queue plus the waker that interrupts the poller.
pub(crate) struct CompletionQueue {
    queue: Mutex<Vec<Completion>>,
    waker: sys::Waker,
}

impl CompletionQueue {
    pub fn new(waker: sys::Waker) -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub fn push(&self, c: Completion) {
        // kamino-lint: allow(unordered_reduce) -- completions are routed by (token, gen) with at most one outstanding per connection; arrival order cannot reorder any client's byte stream
        self.queue.lock().unwrap().push(c);
        self.waker.wake();
    }

    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().unwrap())
    }

    pub fn waker(&self) -> &sys::Waker {
        &self.waker
    }
}

/// An immediate (non-streaming) reply.
pub(crate) struct Reply {
    pub status: &'static str,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    pub close: bool,
    /// `Retry-After` seconds, set on shed (`429`) and deadline (`503`)
    /// replies so well-behaved clients back off instead of hammering.
    pub retry_after: Option<u32>,
}

impl Reply {
    pub fn json(status: &'static str, body: Json, close: bool) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body: body.to_string().into_bytes(),
            close,
            retry_after: None,
        }
    }

    /// A JSON reply carrying a `Retry-After` header.
    pub fn json_retry(status: &'static str, body: Json, close: bool, secs: u32) -> Reply {
        Reply {
            retry_after: Some(secs),
            ..Reply::json(status, body, close)
        }
    }
}

/// What the event loop should do with a parsed request.
pub(crate) enum Action {
    /// Write this response now.
    Respond(Reply),
    /// Begin a chunked `/synthesize` stream.
    Stream(StreamStart),
    /// A job was dispatched; a [`Completion`] addressed to this
    /// connection will carry the response.
    AwaitWorker,
}

/// Everything the event loop needs to run one `/synthesize` stream.
pub(crate) struct StreamStart {
    pub slot: Arc<ModelSlot>,
    pub pin: PinGuard,
    pub remaining: usize,
    pub batch: usize,
    pub format: Format,
    /// CSV header line when the model's schema is already known
    /// (`None` outer: head deferred to the first worker batch).
    pub csv_header: Option<Option<String>>,
    pub meta_known: bool,
}

fn err_json(msg: &str) -> Json {
    Json::obj([("error", Json::Str(msg.to_string()))])
}

/// Normalized route label for metrics and spans: model ids collapse to
/// `{id}` so the label set stays bounded no matter how many models the
/// server has fitted.
pub(crate) fn route_label(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["shutdown"] => "/shutdown",
        ["fit"] => "/fit",
        ["models"] => "/models",
        ["models", _] => "/models/{id}",
        ["models", _, "synthesize"] => "/models/{id}/synthesize",
        ["models", _, "snapshot"] => "/models/{id}/snapshot",
        ["debug", "trace"] => "/debug/trace",
        _ => "other",
    }
}

/// Feeds one finished request into `kamino_http_request_duration_seconds`.
pub(crate) fn observe_request(
    state: &AppState,
    route: &str,
    method: &str,
    status: &str,
    dur_ns: u64,
) {
    if !state.obs.is_enabled() {
        return;
    }
    let code = status.split(' ').next().unwrap_or(status);
    state
        .obs
        .histogram(
            "kamino_http_request_duration_seconds",
            &[("method", method), ("route", route), ("status", code)],
            LATENCY_BUCKETS_S,
        )
        .observe(dur_ns as f64 / 1e9);
}

/// A bound (but not yet running) synthesis server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    threads: usize,
}

impl Server {
    /// Binds the listen address and registers (without decoding) any
    /// snapshots found in the model directory.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let pool_cfg = PoolConfig {
            batches: cfg.pool_batches,
            rows: cfg.pool_rows,
        };
        let registry = Registry::new(cfg.max_models, pool_cfg, cfg.model_dir.clone());
        registry.boot_scan(&cfg.obs)?;
        let state = Arc::new(AppState {
            registry,
            metrics: Metrics::new(),
            obs: cfg.obs.clone(),
            addr,
            draining: AtomicBool::new(false),
            active_fits: AtomicU64::new(0),
            request_timeout_ns: cfg.request_timeout.as_nanos().min(u64::MAX as u128) as u64,
            max_queue: cfg.max_queue as u64,
        });
        Ok(Server {
            listener,
            state,
            threads: cfg.threads.max(1),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until `POST /shutdown`: the listener stops accepting,
    /// in-flight responses — including chunked `/synthesize` streams —
    /// drain to completion, idle keep-alive connections close, queued
    /// fit jobs finish, and `run` returns.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            threads,
        } = self;
        let poller = sys::Poller::new()?;
        let waker = sys::Waker::new()?;
        let done = Arc::new(CompletionQueue::new(waker));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Mutex::new(job_rx);
        thread::scope(|scope| {
            for _ in 0..threads {
                let state = &state;
                let job_rx = &job_rx;
                let done = Arc::clone(&done);
                scope.spawn(move || worker_loop(state, job_rx, &done));
            }
            // the event loop owns the only Sender: when it returns, the
            // channel disconnects and the workers drain the queue and exit
            crate::event_loop::run(poller, listener, &state, job_tx, &done)
        })
    }
}

/// Queues a job, keeping the shed/speculation pressure gauges current.
pub(crate) fn send_job(state: &AppState, jobs: &mpsc::Sender<Job>, job: Job) {
    let depth = state.metrics.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
    note_queue_depth(state, depth);
    let _ = jobs.send(job);
}

/// `true` while the worker queue is at the shed bound.
pub(crate) fn overloaded(state: &AppState) -> bool {
    state.max_queue > 0 && state.metrics.queue_depth.load(Ordering::Acquire) >= state.max_queue
}

/// `true` while pool speculation should stay paused (queue pressure).
pub(crate) fn speculation_paused(state: &AppState) -> bool {
    state.metrics.speculation_paused.load(Ordering::Acquire) != 0
}

/// Pressure hysteresis: speculation pauses once the queue is half full
/// and resumes only when it fully drains, so sustained load cannot
/// flap it per-job.
fn note_queue_depth(state: &AppState, depth: u64) {
    if state.max_queue == 0 {
        return;
    }
    if depth >= state.max_queue.div_ceil(2) {
        state.metrics.speculation_paused.store(1, Ordering::Release);
    } else if depth == 0 {
        state.metrics.speculation_paused.store(0, Ordering::Release);
    }
}

/// The uniform shed reply: `429` + `Retry-After: 1`.
fn shed_reply(state: &AppState, close: bool) -> Action {
    state.metrics.sheds.fetch_add(1, Ordering::Relaxed);
    Action::Respond(Reply::json_retry(
        "429 Too Many Requests",
        err_json("server overloaded: worker queue is full; retry shortly"),
        close,
        1,
    ))
}

/// One worker thread: executes jobs until the event loop hangs up.
fn worker_loop(state: &Arc<AppState>, rx: &Mutex<mpsc::Receiver<Job>>, done: &CompletionQueue) {
    loop {
        let job = rx.lock().unwrap().recv();
        let Ok(job) = job else { break };
        let depth = state
            .metrics
            .queue_depth
            .fetch_sub(1, Ordering::AcqRel)
            .saturating_sub(1);
        note_queue_depth(state, depth);
        match job {
            Job::Fit { slot, spec } => run_fit(state, &slot, spec),
            Job::Refill { slot } => run_refill(state, &slot),
            Job::Batch {
                token,
                gen,
                slot,
                rows,
                format,
                need_header,
            } => {
                let result = run_batch(state, &slot, rows, format, need_header);
                done.push(Completion::Batch { token, gen, result });
                // top the pool back up while the loop streams the bytes;
                // only aligned traffic warrants speculation, and none
                // does while the queue is under pressure
                if rows == state.registry.pool_config().rows && !speculation_paused(state) {
                    maybe_refill(state, &slot);
                }
            }
            Job::Snapshot { token, gen, slot } => {
                let result = run_snapshot(state, &slot);
                done.push(Completion::Snapshot { token, gen, result });
            }
        }
    }
}

/// Claims the refill flag and refills if nobody else already is.
pub(crate) fn maybe_refill(state: &Arc<AppState>, slot: &Arc<ModelSlot>) {
    if !slot.refill_queued.swap(true, Ordering::AcqRel) {
        run_refill(state, slot);
    }
}

/// Refills a resident model's pool to its configured depth, releasing
/// the model mutex between batches so drains interleave.
fn run_refill(state: &Arc<AppState>, slot: &Arc<ModelSlot>) {
    loop {
        let mut guard = slot.resident.lock().unwrap();
        let Some(r) = guard.as_mut() else { break };
        if !r.pool.refill_one(&mut r.fitted) {
            break;
        }
        slot.pool_depth
            .store(r.pool.depth() as u64, Ordering::Relaxed);
    }
    slot.refill_queued.store(false, Ordering::Release);
    let _ = state;
}

/// Maps an [`Registry::ensure_resident`] error to a status line.
fn residency_status(msg: &str) -> &'static str {
    if msg.contains("still fitting") || msg.starts_with("model failed to fit") {
        "409 Conflict"
    } else {
        "500 Internal Server Error"
    }
}

/// Produces one stream batch on a worker: loads the model if needed,
/// then drains the pool or samples directly.
fn run_batch(
    state: &Arc<AppState>,
    slot: &Arc<ModelSlot>,
    rows: usize,
    format: Format,
    need_header: bool,
) -> Result<BatchOut, (&'static str, String)> {
    state
        .registry
        .ensure_resident(slot)
        .map_err(|msg| (residency_status(&msg), msg))?;
    // between ensure_resident and this lock an eviction may race us;
    // one reload retry is enough because we then hold the mutex
    for _ in 0..2 {
        let mut guard = slot.resident.lock().unwrap();
        let Some(r) = guard.as_mut() else {
            drop(guard);
            state
                .registry
                .ensure_resident(slot)
                .map_err(|msg| (residency_status(&msg), msg))?;
            continue;
        };
        let header = if need_header && format == Format::Csv {
            match kamino_data::csv::header_line(r.fitted.schema()) {
                Ok(h) => Some(h),
                Err(e) => {
                    return Err((
                        "500 Internal Server Error",
                        format!("schema is not CSV-serializable: {e}"),
                    ))
                }
            }
        } else {
            None
        };
        let (text, served, hit) = r
            .pool
            .take_batch(&mut r.fitted, rows, format)
            .map_err(|e| ("500 Internal Server Error", e))?;
        slot.pool_depth
            .store(r.pool.depth() as u64, Ordering::Relaxed);
        drop(guard);
        let counter = if hit {
            &state.registry.pool_hits
        } else {
            &state.registry.pool_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        state.registry.touch(slot);
        return Ok(BatchOut {
            text,
            rows: served,
            header,
        });
    }
    Err((
        "500 Internal Server Error",
        "model kept being evicted under the request".into(),
    ))
}

/// Encodes and atomically writes a model snapshot, persisting the
/// canonical (pool-rewound) RNG cursor without discarding speculation.
fn run_snapshot(
    state: &Arc<AppState>,
    slot: &Arc<ModelSlot>,
) -> Result<PathBuf, (&'static str, String)> {
    let Some(dir) = state.registry.model_dir() else {
        return Err(("409 Conflict", "server started without --model-dir".into()));
    };
    let path = dir.join(format!("model-{}.kamino", slot.id));
    state
        .registry
        .ensure_resident(slot)
        .map_err(|msg| (residency_status(&msg), msg))?;
    let bytes = {
        let mut guard = slot.resident.lock().unwrap();
        let Some(r) = guard.as_mut() else {
            return Err(("409 Conflict", "model not ready".into()));
        };
        let live = r.fitted.rng_state();
        let canonical = r.pool.persist_state(&r.fitted);
        r.fitted.set_rng_state(canonical);
        let bytes = crate::snapshot::encode_fitted(&r.fitted);
        r.fitted.set_rng_state(live);
        bytes
    };
    match crate::snapshot::write_snapshot_bytes(&bytes, &path) {
        Ok(()) => {
            state.registry.commit_to_manifest(slot.id, &path);
            slot.set_snapshot_path(path.clone());
            state.registry.touch(slot);
            Ok(path)
        }
        Err(e) => Err(("500 Internal Server Error", format!("snapshot failed: {e}"))),
    }
}

/// The async fit job. A panic inside the pipeline (e.g. an infeasible
/// budget) marks the model `failed` instead of taking a worker down.
///
/// The durable ledger brackets the privacy-relevant section: a
/// `FitIntent` is fsync'd *before* any mechanism runs — if the intent
/// cannot be made durable the fit is refused — and a `FitCommit` (or
/// `FitAbort` on panic) lands after. A crash anywhere between the two is
/// replayed at the next boot as `failed (crashed)` with the budgeted ε
/// still counted as spent.
fn run_fit(state: &Arc<AppState>, slot: &Arc<ModelSlot>, spec: FitSpec) {
    let budget = spec.cfg.budget;
    let plan_hash = spec.cfg.stable_hash();
    if let Err(msg) =
        state
            .registry
            .record_fit_intent(slot.id, budget.epsilon, budget.delta, plan_hash)
    {
        state.registry.finish_fit(
            slot,
            Err(format!(
                "refused: fit intent could not be made durable: {msg}"
            )),
            false,
        );
        state.active_fits.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    crate::durable::chaos::fault_point("fit.after_intent");
    let result = catch_unwind(AssertUnwindSafe(|| {
        let d = spec.corpus.generate(spec.rows, spec.data_seed);
        fit_kamino(&d.schema, &d.instance, &d.dcs, &spec.cfg)
    }));
    let outcome = match result {
        Ok(fitted) => {
            let p = &fitted.params;
            let fingerprint = kamino_dp::spend_fingerprint(
                p.sigma_g,
                p.sigma_d,
                p.sigma_w,
                fitted.achieved_epsilon(),
            );
            state
                .registry
                .record_fit_commit(slot.id, fitted.achieved_epsilon(), fingerprint);
            Ok(fitted)
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "fit panicked".into());
            state
                .registry
                .record_fit_abort(slot.id, crate::durable::AbortReason::Panic);
            Err(msg)
        }
    };
    if state.registry.finish_fit(slot, outcome, spec.persist) {
        state.metrics.fits_done.fetch_add(1, Ordering::Relaxed);
    }
    state.active_fits.fetch_sub(1, Ordering::AcqRel);
}

/// The request surface of `POST /fit`.
pub(crate) struct FitSpec {
    corpus: Corpus,
    rows: usize,
    data_seed: u64,
    cfg: KaminoConfig,
    persist: bool,
}

fn parse_fit_spec(body: &Json, model_dir_set: bool) -> Result<FitSpec, String> {
    let corpus = match body.get("corpus").and_then(Json::as_str).unwrap_or("adult") {
        "adult" => Corpus::Adult,
        "br2000" => Corpus::Br2000,
        "tax" => Corpus::Tax,
        "tpch" => Corpus::TpcH,
        other => return Err(format!("unknown corpus `{other}`")),
    };
    let rows = body
        .get("rows")
        .map(|v| v.as_u64().ok_or("`rows` must be a non-negative integer"))
        .transpose()?
        .unwrap_or(200) as usize;
    if rows == 0 || rows > MAX_FIT_ROWS {
        return Err(format!("`rows` must be in [1, {MAX_FIT_ROWS}]"));
    }
    let non_private = body
        .get("non_private")
        .and_then(Json::as_bool)
        .unwrap_or(false)
        || body.get("epsilon").and_then(Json::as_str) == Some("inf");
    let budget = if non_private {
        Budget::non_private()
    } else {
        let epsilon = body.get("epsilon").and_then(Json::as_f64).unwrap_or(1.0);
        let delta = body.get("delta").and_then(Json::as_f64).unwrap_or(1e-6);
        if epsilon <= 0.0 {
            return Err("`epsilon` must be positive".into());
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err("`delta` must be in (0, 1)".into());
        }
        Budget::new(epsilon, delta)
    };
    let mut cfg = KaminoConfig::new(budget);
    if let Some(seed) = body.get("seed").and_then(Json::as_u64) {
        cfg.seed = seed;
    }
    if let Some(shards) = body.get("shards").and_then(Json::as_u64) {
        if shards == 0 || shards > 64 {
            return Err("`shards` must be in [1, 64]".into());
        }
        cfg.shards = shards as usize;
    }
    if let Some(scale) = body.get("train_scale").and_then(Json::as_f64) {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err("`train_scale` must be in (0, 1]".into());
        }
        cfg.train_scale = scale;
    }
    if let Some(ratio) = body.get("mcmc_ratio").and_then(Json::as_f64) {
        if !(0.0..=1.0).contains(&ratio) {
            return Err("`mcmc_ratio` must be in [0, 1]".into());
        }
        cfg.mcmc_ratio = ratio;
    }
    let persist = body
        .get("persist")
        .and_then(Json::as_bool)
        .unwrap_or(model_dir_set);
    Ok(FitSpec {
        corpus,
        rows,
        data_seed: body.get("data_seed").and_then(Json::as_u64).unwrap_or(1),
        cfg,
        persist,
    })
}

/// Routes one parsed request. `token`/`gen` identify the connection for
/// worker completions; `close` is what the connection decided about
/// keep-alive (echoed into immediate replies).
pub(crate) fn dispatch(
    req: &Request,
    token: u64,
    gen: u64,
    state: &Arc<AppState>,
    jobs: &mpsc::Sender<Job>,
    close: bool,
) -> Action {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let body = Json::obj([
                ("status", Json::Str("ok".into())),
                ("models", Json::Num(state.registry.len() as f64)),
                ("uptime_ms", Json::Num(state.metrics.uptime_ms() as f64)),
            ]);
            Action::Respond(Reply::json("200 OK", body, close))
        }
        ("GET", ["metrics"]) => {
            let stats = state.registry.stats();
            let body = state.metrics.render_prometheus(&state.obs, &stats);
            Action::Respond(Reply {
                status: "200 OK",
                content_type: "text/plain; version=0.0.4",
                body: body.into_bytes(),
                close,
                retry_after: None,
            })
        }
        ("POST", ["debug", "trace"]) => Action::Respond(Reply {
            status: "200 OK",
            content_type: "application/json",
            body: state.obs.chrome_trace_json().into_bytes(),
            close,
            retry_after: None,
        }),
        ("POST", ["shutdown"]) => {
            state.draining.store(true, Ordering::Release);
            let body = Json::obj([("status", Json::Str("shutting down".into()))]);
            Action::Respond(Reply::json("200 OK", body, true))
        }
        ("POST", ["fit"]) => dispatch_fit(req, state, jobs, close),
        ("GET", ["models"]) => {
            let list: Vec<Json> = state
                .registry
                .list()
                .into_iter()
                .map(|s| {
                    Json::obj([
                        ("model_id", Json::Num(s.id as f64)),
                        ("status", Json::Str(s.status.lock().unwrap().name().into())),
                    ])
                })
                .collect();
            Action::Respond(Reply::json("200 OK", Json::Arr(list), close))
        }
        ("GET", ["models", id]) => match lookup(state, id) {
            None => not_found(close),
            Some(slot) => Action::Respond(Reply::json("200 OK", slot.info_json(), close)),
        },
        ("POST", ["models", id, "synthesize"]) => match lookup(state, id) {
            None => not_found(close),
            Some(slot) => dispatch_synthesize(req, state, slot, close),
        },
        ("POST", ["models", id, "snapshot"]) => match lookup(state, id) {
            None => not_found(close),
            Some(slot) => {
                if state.registry.model_dir().is_none() {
                    return Action::Respond(Reply::json(
                        "409 Conflict",
                        err_json("server started without --model-dir"),
                        close,
                    ));
                }
                if overloaded(state) {
                    return shed_reply(state, close);
                }
                send_job(state, jobs, Job::Snapshot { token, gen, slot });
                Action::AwaitWorker
            }
        },
        (_, ["healthz" | "metrics" | "shutdown" | "fit" | "models" | "debug", ..]) => {
            Action::Respond(Reply::json(
                "405 Method Not Allowed",
                err_json("method not allowed on this path"),
                close,
            ))
        }
        _ => Action::Respond(Reply::json(
            "404 Not Found",
            err_json("unknown path"),
            close,
        )),
    }
}

fn lookup(state: &AppState, id: &str) -> Option<Arc<ModelSlot>> {
    id.parse::<u64>().ok().and_then(|id| state.registry.get(id))
}

fn not_found(close: bool) -> Action {
    Action::Respond(Reply::json(
        "404 Not Found",
        err_json("no such model"),
        close,
    ))
}

fn dispatch_fit(
    req: &Request,
    state: &Arc<AppState>,
    jobs: &mpsc::Sender<Job>,
    close: bool,
) -> Action {
    let text = String::from_utf8_lossy(&req.body);
    let body = if req.body.is_empty() {
        Json::obj([])
    } else {
        match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                return Action::Respond(Reply::json(
                    "400 Bad Request",
                    err_json(&format!("invalid JSON body: {e}")),
                    close,
                ))
            }
        }
    };
    let mut spec = match parse_fit_spec(&body, state.registry.model_dir().is_some()) {
        Ok(s) => s,
        Err(e) => return Action::Respond(Reply::json("400 Bad Request", err_json(&e), close)),
    };
    // fit phases, per-column sample spans and the DP budget ledger all
    // land in the server's shared obs sinks
    spec.cfg.obs = state.obs.clone();

    // admission control: claim a training slot or turn the burst away
    let claimed = state
        .active_fits
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < MAX_CONCURRENT_FITS).then_some(n + 1)
        })
        .is_ok();
    if !claimed {
        state.metrics.fit_rejected.fetch_add(1, Ordering::Relaxed);
        return Action::Respond(Reply::json_retry(
            "429 Too Many Requests",
            err_json(&format!(
                "{MAX_CONCURRENT_FITS} fit jobs already training; retry shortly"
            )),
            close,
            1,
        ));
    }

    let slot = state.registry.create_fitting();
    let id = slot.id;
    state.metrics.fits_started.fetch_add(1, Ordering::Relaxed);
    send_job(state, jobs, Job::Fit { slot, spec });

    let body = Json::obj([
        ("model_id", Json::Num(id as f64)),
        ("status", Json::Str("fitting".into())),
        ("poll", Json::Str(format!("/models/{id}"))),
    ]);
    Action::Respond(Reply::json("202 Accepted", body, close))
}

fn dispatch_synthesize(
    req: &Request,
    state: &Arc<AppState>,
    slot: Arc<ModelSlot>,
    close: bool,
) -> Action {
    // shed at admission only: streams already running keep their lane
    // (their batch jobs are never shed mid-flight)
    if overloaded(state) {
        return shed_reply(state, close);
    }
    let n = req.query_usize("n").unwrap_or(100);
    if n == 0 || n > MAX_SYNTH_ROWS {
        return Action::Respond(Reply::json(
            "400 Bad Request",
            err_json(&format!("`n` must be in [1, {MAX_SYNTH_ROWS}]")),
            close,
        ));
    }
    let batch = req
        .query_usize("batch")
        .unwrap_or(1_000)
        .clamp(1, MAX_BATCH);
    let format = match req.query.get("format").map(String::as_str).unwrap_or("csv") {
        "csv" => Format::Csv,
        "json" => Format::Json,
        _ => {
            return Action::Respond(Reply::json(
                "400 Bad Request",
                err_json("`format` must be `csv` or `json`"),
                close,
            ))
        }
    };

    // refuse early when the model cannot serve; grab cached metadata so
    // ready models start streaming without waiting on the model mutex
    let meta = {
        let guard = slot.status.lock().unwrap();
        match &*guard {
            SlotStatus::Fitting => {
                return Action::Respond(Reply::json(
                    "409 Conflict",
                    err_json("model is still fitting"),
                    close,
                ))
            }
            SlotStatus::Failed(msg) => {
                return Action::Respond(Reply::json(
                    "409 Conflict",
                    err_json(&format!("model failed to fit: {msg}")),
                    close,
                ))
            }
            other => other.meta(),
        }
    };
    let csv_header = match &meta {
        Some(m) if format == Format::Csv => {
            if m.csv_header.is_none() {
                return Action::Respond(Reply::json(
                    "500 Internal Server Error",
                    err_json("schema is not CSV-serializable"),
                    close,
                ));
            }
            Some(m.csv_header.clone())
        }
        // NDJSON needs no header line, but a known schema still lets the
        // response head go out immediately
        Some(_) => Some(None),
        // never loaded since boot: the first worker batch brings the
        // header, and load errors still get a clean JSON status
        None => None,
    };
    let pin = state.registry.pin(&slot);
    state.registry.touch(&slot);
    Action::Stream(StreamStart {
        slot,
        pin,
        remaining: n,
        batch,
        format,
        meta_known: csv_header.is_some(),
        csv_header,
    })
}
