//! The `.kamino` snapshot container: a versioned, endianness-fixed binary
//! format that persists a complete fitted synthesis session.
//!
//! ## Layout
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────┐
//! │ magic  "KAMSNAP\0"                              8 bytes │
//! │ format version (u32 LE, currently 1)            4 bytes │
//! │ section count   (u32 LE)                        4 bytes │
//! │ section table: id u32 · offset u64 · len u64 · crc u32  │
//! │ payload: the sections, back to back                     │
//! └─────────────────────────────────────────────────────────┘
//! ```
//!
//! Offsets are relative to the payload base (first byte after the
//! table). Each section is sealed with an IEEE CRC-32; the loader
//! verifies every checksum before decoding a single byte of payload, so
//! bit rot surfaces as [`SnapshotError::CrcMismatch`] instead of a
//! garbage model. Unknown *extra* sections are ignored on load — future
//! versions can append sections without breaking old readers — while a
//! bumped version number (incompatible layout) is refused outright.
//!
//! The sections persist everything [`FittedKamino`] is made of: the
//! schema (which determines quantizers/encoders), the DC list with
//! hardness, the trained model tensors, the selected privacy parameters,
//! the pipeline configuration (budget included), the session trail
//! (sequence, learned DC weights, input size, fit timings) and the RNG
//! cursor. Loading therefore resumes the *exact* deterministic sample
//! stream the saved session would have produced next — sampling spends
//! no privacy budget, so a snapshot can be shared and queried forever at
//! the ε it was fitted under.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use kamino_core::snapshot as core_codec;
use kamino_core::FittedKamino;
use kamino_data::wire::{crc32, ByteReader, ByteWriter, WireError};

/// File magic, 8 bytes.
pub const MAGIC: [u8; 8] = *b"KAMSNAP\0";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Section ids of format version 1.
mod section {
    pub const SCHEMA: u32 = 1;
    pub const DCS: u32 = 2;
    pub const MODEL: u32 = 3;
    pub const PARAMS: u32 = 4;
    pub const CONFIG: u32 = 5;
    pub const SESSION: u32 = 6;
    pub const RNG: u32 = 7;
    /// Sample-phase timing breakdown (fill/repair/MCMC), added after v1
    /// shipped. Optional on load: files written before it existed decode
    /// with zeroed sample timings, and readers predating it skip it as an
    /// unknown extra section.
    pub const SAMPLE_TIMINGS: u32 = 8;
}

fn section_name(id: u32) -> &'static str {
    match id {
        section::SCHEMA => "schema",
        section::DCS => "dcs",
        section::MODEL => "model",
        section::PARAMS => "params",
        section::CONFIG => "config",
        section::SESSION => "session",
        section::RNG => "rng",
        section::SAMPLE_TIMINGS => "sample_timings",
        _ => "unknown",
    }
}

/// Everything that can go wrong saving or loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file does not start with the `KAMSNAP` magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// A section's CRC-32 does not match its bytes.
    CrcMismatch {
        /// Human-readable section name.
        section: &'static str,
    },
    /// A required section is absent from the table.
    MissingSection {
        /// Human-readable section name.
        section: &'static str,
    },
    /// The section table points outside the payload.
    BadSectionTable(String),
    /// A section's bytes do not decode.
    Wire(WireError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a Kamino snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::CrcMismatch { section } => {
                write!(
                    f,
                    "snapshot section `{section}` failed its CRC check (corrupted file)"
                )
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section `{section}`")
            }
            SnapshotError::BadSectionTable(msg) => write!(f, "bad section table: {msg}"),
            SnapshotError::Wire(e) => write!(f, "snapshot payload does not decode: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> SnapshotError {
        SnapshotError::Wire(e)
    }
}

/// Serializes a fitted session to the container format in memory.
pub fn encode_fitted(fitted: &FittedKamino) -> Vec<u8> {
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(8);

    let mut w = ByteWriter::new();
    kamino_data::snapshot::encode_schema(fitted.schema(), &mut w);
    sections.push((section::SCHEMA, w.into_bytes()));

    let mut w = ByteWriter::new();
    kamino_constraints::snapshot::encode_dcs(fitted.dcs(), &mut w);
    sections.push((section::DCS, w.into_bytes()));

    let mut w = ByteWriter::new();
    core_codec::encode_model(fitted.model(), &mut w);
    sections.push((section::MODEL, w.into_bytes()));

    let mut w = ByteWriter::new();
    core_codec::encode_params(&fitted.params, &mut w);
    sections.push((section::PARAMS, w.into_bytes()));

    let mut w = ByteWriter::new();
    core_codec::encode_config(fitted.config(), &mut w);
    sections.push((section::CONFIG, w.into_bytes()));

    let mut w = ByteWriter::new();
    w.put_usizes(&fitted.sequence);
    w.put_f64s(&fitted.weights);
    w.put_usize(fitted.n_input());
    core_codec::encode_timings(&fitted.timings, &mut w);
    sections.push((section::SESSION, w.into_bytes()));

    let mut w = ByteWriter::new();
    for s in fitted.rng_state() {
        w.put_u64(s);
    }
    sections.push((section::RNG, w.into_bytes()));

    let mut w = ByteWriter::new();
    core_codec::encode_sample_timings(&fitted.timings, &mut w);
    sections.push((section::SAMPLE_TIMINGS, w.into_bytes()));

    let mut header = ByteWriter::new();
    header.put_raw(&MAGIC);
    header.put_u32(FORMAT_VERSION);
    header.put_u32(sections.len() as u32);
    let mut offset = 0u64;
    for (id, bytes) in &sections {
        header.put_u32(*id);
        header.put_u64(offset);
        header.put_u64(bytes.len() as u64);
        header.put_u32(crc32(bytes));
        offset += bytes.len() as u64;
    }
    let mut out = header.into_bytes();
    for (_, bytes) in &sections {
        out.extend_from_slice(bytes);
    }
    out
}

/// One parsed-and-verified section table entry.
struct SectionSlice<'a> {
    id: u32,
    bytes: &'a [u8],
}

fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionSlice<'_>>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.raw(8).map_err(|_| SnapshotError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32().map_err(SnapshotError::Wire)?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count > 256 {
        return Err(SnapshotError::BadSectionTable(format!(
            "{count} sections is beyond any valid snapshot"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let crc = r.u32()?;
        entries.push((id, offset, len, crc));
    }
    let payload_base = bytes.len() - r.remaining();
    let payload = &bytes[payload_base..];
    let mut out = Vec::with_capacity(count);
    for (id, offset, len, crc) in entries {
        let end = offset.checked_add(len).ok_or_else(|| {
            SnapshotError::BadSectionTable(format!("section {id} offset overflow"))
        })?;
        if end > payload.len() as u64 {
            return Err(SnapshotError::BadSectionTable(format!(
                "section `{}` [{offset}, {end}) exceeds payload of {} bytes",
                section_name(id),
                payload.len()
            )));
        }
        let slice = &payload[offset as usize..end as usize];
        if crc32(slice) != crc {
            return Err(SnapshotError::CrcMismatch {
                section: section_name(id),
            });
        }
        out.push(SectionSlice { id, bytes: slice });
    }
    Ok(out)
}

fn find<'a>(sections: &'a [SectionSlice<'a>], id: u32) -> Result<ByteReader<'a>, SnapshotError> {
    sections
        .iter()
        .find(|s| s.id == id)
        .map(|s| ByteReader::new(s.bytes))
        .ok_or(SnapshotError::MissingSection {
            section: section_name(id),
        })
}

/// Deserializes a fitted session from container bytes.
pub fn decode_fitted(bytes: &[u8]) -> Result<FittedKamino, SnapshotError> {
    let sections = parse_sections(bytes)?;

    let mut r = find(&sections, section::SCHEMA)?;
    let schema = kamino_data::snapshot::decode_schema(&mut r)?;

    let mut r = find(&sections, section::DCS)?;
    let dcs = kamino_constraints::snapshot::decode_dcs(&mut r, &schema)?;

    let mut r = find(&sections, section::MODEL)?;
    let model = core_codec::decode_model(&mut r)?;
    validate_model(&model, &schema)?;

    let mut r = find(&sections, section::PARAMS)?;
    let params = core_codec::decode_params(&mut r)?;

    let mut r = find(&sections, section::CONFIG)?;
    let cfg = core_codec::decode_config(&mut r)?;

    let mut r = find(&sections, section::SESSION)?;
    let sequence = r.usizes()?;
    let weights = r.f64s()?;
    let n_input = r.usize()?;
    let mut timings = core_codec::decode_timings(&mut r)?;
    // optional: absent from snapshots written before the section existed
    if let Ok(mut r) = find(&sections, section::SAMPLE_TIMINGS) {
        core_codec::decode_sample_timings(&mut r, &mut timings)?;
    }
    if weights.len() != dcs.len() {
        return Err(SnapshotError::Wire(WireError::Malformed(format!(
            "{} weights for {} DCs",
            weights.len(),
            dcs.len()
        ))));
    }
    if sequence != model.sequence {
        return Err(SnapshotError::Wire(WireError::Malformed(
            "session sequence disagrees with the model's sequence".into(),
        )));
    }

    let mut r = find(&sections, section::RNG)?;
    let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];

    Ok(FittedKamino::from_parts(
        sequence, weights, params, timings, schema, dcs, model, cfg, n_input, rng_state,
    ))
}

/// Range-checks every attribute index the model carries against the
/// schema loaded alongside it, so a divergent snapshot fails here
/// instead of panicking mid-`/synthesize` (which would poison the
/// model's mutex). The DC section gets the same treatment inside
/// `kamino_constraints::snapshot::decode_dcs`.
fn validate_model(
    model: &kamino_core::DataModel,
    schema: &kamino_data::Schema,
) -> Result<(), SnapshotError> {
    let k = schema.len();
    let malformed = |msg: String| SnapshotError::Wire(WireError::Malformed(msg));
    if model.sequence.len() != k {
        return Err(malformed(format!(
            "model sequence covers {} attributes, schema has {k}",
            model.sequence.len()
        )));
    }
    let mut seen = vec![false; k];
    for &a in &model.sequence {
        if a >= k || std::mem::replace(&mut seen[a], true) {
            return Err(malformed(format!(
                "model sequence is not a permutation of 0..{k}"
            )));
        }
    }
    if model.first_dist.len() != schema.attr(model.sequence[0]).domain_size() {
        return Err(malformed(format!(
            "first-attribute distribution has {} entries for a domain of {}",
            model.first_dist.len(),
            schema.attr(model.sequence[0]).domain_size()
        )));
    }
    validate_store(&model.store, schema)?;
    for sm in &model.submodels {
        if sm.target >= k {
            return Err(malformed(format!(
                "sub-model target {} out of range",
                sm.target
            )));
        }
        if let Some(&bad) = sm.context.iter().find(|&&c| c >= k) {
            return Err(malformed(format!(
                "sub-model context attribute {bad} out of range"
            )));
        }
        if let Some(store) = &sm.own_store {
            validate_store(store, schema)?;
        }
        let store = sm.own_store.as_ref().unwrap_or(&model.store);
        let target_attr = schema.attr(sm.target);
        match &sm.kind {
            kamino_core::model::SubModelKind::NoisyMarginal { dist } => {
                if dist.len() != target_attr.domain_size() {
                    return Err(malformed(format!(
                        "noisy marginal for `{}` has {} entries for a domain of {}",
                        target_attr.name,
                        dist.len(),
                        target_attr.domain_size()
                    )));
                }
            }
            kamino_core::model::SubModelKind::Discriminative { head, .. } => match head {
                kamino_core::model::Head::Cat(h) => {
                    if !target_attr.is_categorical() || h.card() != target_attr.domain_size() {
                        return Err(malformed(format!(
                            "categorical head for `{}` predicts {} classes over a domain of {}",
                            target_attr.name,
                            h.card(),
                            target_attr.domain_size()
                        )));
                    }
                    if h.linear().n_in() != store.dim() {
                        return Err(malformed("head width disagrees with embedding dim".into()));
                    }
                }
                kamino_core::model::Head::Num(h) => {
                    if target_attr.is_categorical() {
                        return Err(malformed(format!(
                            "Gaussian head for categorical attribute `{}`",
                            target_attr.name
                        )));
                    }
                    if h.linear().n_in() != store.dim() {
                        return Err(malformed("head width disagrees with embedding dim".into()));
                    }
                }
            },
        }
    }
    Ok(())
}

/// Checks a store's embedders against the schema: attribute coverage,
/// kind (categorical vs numeric), domain cardinality and embedding
/// width — each mismatch would otherwise panic inside `sample()` while
/// the model mutex is held, poisoning the slot.
fn validate_store(
    store: &kamino_core::model::EmbeddingStore,
    schema: &kamino_data::Schema,
) -> Result<(), SnapshotError> {
    use kamino_core::model::AttrEmbedder;
    let malformed = |msg: String| SnapshotError::Wire(WireError::Malformed(msg));
    if store.embedders().len() != schema.len() {
        return Err(malformed(format!(
            "embedding store covers {} attributes, schema has {}",
            store.embedders().len(),
            schema.len()
        )));
    }
    for (attr, embedder) in schema.attrs().iter().zip(store.embedders()) {
        match embedder {
            None => {}
            Some(AttrEmbedder::Cat(e)) => {
                if !attr.is_categorical() || e.card() != attr.domain_size() {
                    return Err(malformed(format!(
                        "embedder for `{}` covers {} codes over a domain of {}",
                        attr.name,
                        e.card(),
                        attr.domain_size()
                    )));
                }
                if e.dim() != store.dim() {
                    return Err(malformed(format!(
                        "embedder for `{}` has width {} in a dim-{} store",
                        attr.name,
                        e.dim(),
                        store.dim()
                    )));
                }
            }
            Some(AttrEmbedder::Num { enc, .. }) => {
                if attr.is_categorical() {
                    return Err(malformed(format!(
                        "numeric encoder for categorical attribute `{}`",
                        attr.name
                    )));
                }
                if enc.dim() != store.dim() {
                    return Err(malformed(format!(
                        "encoder for `{}` has width {} in a dim-{} store",
                        attr.name,
                        enc.dim(),
                        store.dim()
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Writes already-encoded snapshot bytes to `path` through the durable
/// install protocol ([`crate::durable::write_atomic`]: unique tmp →
/// fsync file → rename → fsync dir). Split from [`save_fitted`] so
/// callers holding a lock on the session can encode under the lock and
/// do the disk I/O outside it. The tmp name is unique per call —
/// concurrent saves of the same model each install a complete file via
/// their own rename instead of interleaving writes into a shared tmp
/// (which could tear the snapshot).
pub fn write_snapshot_bytes(bytes: &[u8], path: &Path) -> Result<(), SnapshotError> {
    crate::durable::write_atomic(bytes, path).map_err(SnapshotError::Io)
}

/// Reads a snapshot and verifies every section CRC without decoding any
/// payload — the boot-scan integrity check behind the quarantine
/// policy. Strictly stronger than [`peek_snapshot`] (which never reads
/// the payload): bit rot anywhere in the file surfaces here.
pub fn verify_snapshot(path: &Path) -> Result<(), SnapshotError> {
    let bytes = fs::read(path)?;
    parse_sections(&bytes)?;
    Ok(())
}

/// What [`peek_snapshot`] learns from a snapshot's header and section
/// table without decoding (or even reading) the payload.
#[derive(Debug, Clone)]
pub struct SnapshotSummary {
    /// Container format version.
    pub version: u32,
    /// Section ids present, in table order.
    pub sections: Vec<u32>,
    /// Total payload bytes the table accounts for.
    pub payload_len: u64,
}

/// Validates a snapshot's magic, version and section table by reading
/// only the file's header — the cheap boot-time registration check for
/// the lazy model registry. Every section required by
/// [`decode_fitted`] must be present; payload CRCs are *not* checked
/// here (that happens on first load).
pub fn peek_snapshot(path: &Path) -> Result<SnapshotSummary, SnapshotError> {
    use std::io::Read;
    let mut f = fs::File::open(path)?;
    let file_len = f.metadata()?.len();
    // magic + version + count
    let mut fixed = [0u8; 16];
    f.read_exact(&mut fixed)
        .map_err(|_| SnapshotError::BadMagic)?;
    let mut r = ByteReader::new(&fixed);
    let magic = r.raw(8).map_err(|_| SnapshotError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count > 256 {
        return Err(SnapshotError::BadSectionTable(format!(
            "{count} sections is beyond any valid snapshot"
        )));
    }
    let mut table = vec![0u8; count * 24];
    f.read_exact(&mut table)
        .map_err(|_| SnapshotError::BadSectionTable("truncated section table".into()))?;
    let mut r = ByteReader::new(&table);
    let payload_base = 16 + table.len() as u64;
    let payload_len = file_len.saturating_sub(payload_base);
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let _crc = r.u32()?;
        let end = offset.checked_add(len).ok_or_else(|| {
            SnapshotError::BadSectionTable(format!("section {id} offset overflow"))
        })?;
        if end > payload_len {
            return Err(SnapshotError::BadSectionTable(format!(
                "section `{}` [{offset}, {end}) exceeds payload of {payload_len} bytes",
                section_name(id)
            )));
        }
        sections.push(id);
    }
    for required in [
        section::SCHEMA,
        section::DCS,
        section::MODEL,
        section::PARAMS,
        section::CONFIG,
        section::SESSION,
        section::RNG,
    ] {
        if !sections.contains(&required) {
            return Err(SnapshotError::MissingSection {
                section: section_name(required),
            });
        }
    }
    Ok(SnapshotSummary {
        version,
        sections,
        payload_len,
    })
}

/// Saves a fitted session to `path` (atomically: write to a `.tmp`
/// sibling, then rename).
pub fn save_fitted(fitted: &FittedKamino, path: &Path) -> Result<(), SnapshotError> {
    write_snapshot_bytes(&encode_fitted(fitted), path)
}

/// Loads a fitted session from `path`.
pub fn load_fitted(path: &Path) -> Result<FittedKamino, SnapshotError> {
    let bytes = fs::read(path)?;
    decode_fitted(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamino_core::{fit_kamino, KaminoConfig};
    use kamino_dp::Budget;

    fn tiny_fitted(seed: u64) -> FittedKamino {
        let d = kamino_datasets::adult_like(80, 3);
        let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
        cfg.train_scale = 0.02;
        cfg.embed_dim = 8;
        cfg.seed = seed;
        fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg)
    }

    #[test]
    fn roundtrip_resumes_exact_stream() {
        let mut live = tiny_fitted(11);
        // advance the stream, snapshot mid-flight
        let _ = live.sample(20);
        let bytes = encode_fitted(&live);
        let mut loaded = decode_fitted(&bytes).unwrap();
        assert_eq!(loaded.achieved_epsilon(), live.achieved_epsilon());
        assert_eq!(loaded.sequence, live.sequence);
        assert_eq!(loaded.weights, live.weights);
        assert_eq!(loaded.n_input(), live.n_input());
        // the next rows must be bit-identical
        assert_eq!(live.sample(40), loaded.sample(40));
        // and stay in lockstep afterwards
        assert_eq!(live.sample(8), loaded.sample(8));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_fitted(&tiny_fitted(1));
        bytes[0] = b'X';
        assert!(matches!(
            decode_fitted(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            decode_fitted(b"short"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_fitted(&tiny_fitted(2));
        bytes[8] = 0xFE; // version LE low byte
        assert!(matches!(
            decode_fitted(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let bytes = encode_fitted(&tiny_fitted(3));
        // flip one bit near the end (inside the last section's payload)
        let mut corrupt = bytes.clone();
        let pos = corrupt.len() - 3;
        corrupt[pos] ^= 0x40;
        assert!(matches!(
            decode_fitted(&corrupt),
            Err(SnapshotError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_is_an_error() {
        let bytes = encode_fitted(&tiny_fitted(4));
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_fitted(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// Owned copy of a session's model via the codec (DataModel is not
    /// `Clone`).
    fn clone_model(f: &FittedKamino) -> kamino_core::DataModel {
        let mut w = kamino_data::wire::ByteWriter::new();
        core_codec::encode_model(f.model(), &mut w);
        let bytes = w.into_bytes();
        core_codec::decode_model(&mut kamino_data::wire::ByteReader::new(&bytes)).unwrap()
    }

    #[test]
    fn out_of_schema_model_indices_are_rejected() {
        // a structurally valid container whose model points outside the
        // schema must fail validation at load, not panic at sample time
        let fitted = tiny_fitted(6);
        let mut model = clone_model(&fitted);
        model.submodels[0].target = 1_000_000;
        let broken = FittedKamino::from_parts(
            fitted.sequence.clone(),
            fitted.weights.clone(),
            fitted.params.clone(),
            fitted.timings,
            fitted.schema().clone(),
            fitted.dcs().to_vec(),
            model,
            fitted.config().clone(),
            fitted.n_input(),
            fitted.rng_state(),
        );
        let bytes = encode_fitted(&broken);
        assert!(matches!(decode_fitted(&bytes), Err(SnapshotError::Wire(_))));
    }

    #[test]
    fn session_model_sequence_divergence_is_rejected() {
        let fitted = tiny_fitted(7);
        let mut sequence = fitted.sequence.clone();
        sequence.swap(0, 1);
        let diverged = FittedKamino::from_parts(
            sequence,
            fitted.weights.clone(),
            fitted.params.clone(),
            fitted.timings,
            fitted.schema().clone(),
            fitted.dcs().to_vec(),
            clone_model(&fitted),
            fitted.config().clone(),
            fitted.n_input(),
            fitted.rng_state(),
        );
        let bytes = encode_fitted(&diverged);
        assert!(matches!(decode_fitted(&bytes), Err(SnapshotError::Wire(_))));
    }

    /// Rebuilds a container keeping only sections whose id passes the
    /// filter — a stand-in for files written by older builds.
    fn rebuild_without(bytes: &[u8], drop_id: u32) -> Vec<u8> {
        let sections = parse_sections(bytes).unwrap();
        let kept: Vec<(u32, Vec<u8>)> = sections
            .iter()
            .filter(|s| s.id != drop_id)
            .map(|s| (s.id, s.bytes.to_vec()))
            .collect();
        let mut header = kamino_data::wire::ByteWriter::new();
        header.put_raw(&MAGIC);
        header.put_u32(FORMAT_VERSION);
        header.put_u32(kept.len() as u32);
        let mut offset = 0u64;
        for (id, b) in &kept {
            header.put_u32(*id);
            header.put_u64(offset);
            header.put_u64(b.len() as u64);
            header.put_u32(crc32(b));
            offset += b.len() as u64;
        }
        let mut out = header.into_bytes();
        for (_, b) in &kept {
            out.extend_from_slice(b);
        }
        out
    }

    #[test]
    fn old_snapshots_without_sample_timings_still_load() {
        let mut live = tiny_fitted(8);
        let _ = live.sample(10);
        let old_format = rebuild_without(&encode_fitted(&live), section::SAMPLE_TIMINGS);
        let mut loaded = decode_fitted(&old_format).unwrap();
        // sample timings default to zero; everything else round-trips,
        // including the exact RNG stream
        assert_eq!(loaded.timings.sample_fill, std::time::Duration::ZERO);
        assert_eq!(loaded.timings.sample_repair, std::time::Duration::ZERO);
        assert_eq!(loaded.timings.sample_mcmc, std::time::Duration::ZERO);
        assert_eq!(live.sample(24), loaded.sample(24));
    }

    #[test]
    fn peek_validates_header_without_decoding() {
        let dir = std::env::temp_dir().join("kamino-serve-test-peek");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.kamino");
        let fitted = tiny_fitted(9);
        save_fitted(&fitted, &path).unwrap();
        let summary = peek_snapshot(&path).unwrap();
        assert_eq!(summary.version, FORMAT_VERSION);
        assert!(summary.sections.contains(&section::RNG));
        assert!(summary.payload_len > 0);

        // bad magic is caught from the first 16 bytes alone
        let garbage = dir.join("garbage.kamino");
        std::fs::write(&garbage, b"not a snapshot at all").unwrap();
        assert!(matches!(
            peek_snapshot(&garbage),
            Err(SnapshotError::BadMagic)
        ));

        // a truncated payload fails the table bounds check
        let bytes = encode_fitted(&fitted);
        let cut = dir.join("cut.kamino");
        std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
        assert!(peek_snapshot(&cut).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let dir = std::env::temp_dir().join("kamino-serve-test-snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.kamino");
        let mut live = tiny_fitted(5);
        save_fitted(&live, &path).unwrap();
        let mut loaded = load_fitted(&path).unwrap();
        assert_eq!(live.sample(16), loaded.sample(16));
        std::fs::remove_file(&path).unwrap();
    }
}
