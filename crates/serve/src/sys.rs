//! OS readiness shim: the one seam between the serving event loop and
//! the kernel.
//!
//! All `unsafe` FFI lives in the vendored `epoll` crate (the workspace's
//! offline stand-in for Linux epoll bindings); this module re-exports
//! its safe surface so `kamino-serve` keeps `#![forbid(unsafe_code)]`
//! while the event loop gets level-triggered readiness, caller-chosen
//! `u64` tokens and a cross-thread [`Waker`]. On non-Linux targets the
//! shim compiles but [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`] — [`crate::server::Server::run`]
//! reports that instead of panicking.

pub use epoll::{Event, Interest, Poller, Waker};
