//! Crash-recovery chaos suite: the real `kamino-serve` binary is spawned
//! with `KAMINO_CHAOS_FAULT` set, killed hard (`abort`/SIGKILL) at an
//! injected fault point, and restarted over the same `--model-dir`. The
//! invariants after every crash:
//!
//! * the budget ledger never under-counts — every durably-intended ε is
//!   still reported as spent after recovery, and a crashed fit surfaces
//!   as a `failed` model rather than vanishing;
//! * torn ledger tails and stale atomic-install tmp files are truncated
//!   or quarantined, never fatal and never loaded;
//! * a persisted model resumes its sample stream bit-exactly;
//! * `/healthz` answers after every recovery.
//!
//! The final test drives the overload surface in-process: per-request
//! deadlines (503 + `Retry-After`, mid-stream trailer termination) and
//! bounded-queue load shedding (429 + `Retry-After`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use kamino_serve::{Json, ServeConfig, Server};

// ---------------------------------------------------------------- client

fn send_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(180)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// One `Connection: close` exchange; panics on transport errors.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let raw = send_request(addr, method, path, body).expect("request");
    parse_response(&raw)
}

/// Like [`request`], but tolerates the server dying mid-exchange — used
/// for the request that rides into an injected crash.
fn request_lossy(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) {
    let _ = send_request(addr, method, path, body);
}

fn parse_response(raw: &[u8]) -> (String, String) {
    let text = String::from_utf8_lossy(raw).into_owned();
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn assert_healthy(addr: SocketAddr, scenario: &str) {
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert!(status.contains("200"), "dead after {scenario}: {status}");
    assert_eq!(
        json(&body).get("status").and_then(Json::as_str),
        Some("ok"),
        "unhealthy after {scenario}"
    );
}

/// Value of a `/metrics` gauge/counter line, e.g. `metric_value(&m, "kamino_shed_total")`.
fn metric_value(metrics: &str, name: &str) -> f64 {
    let prefix = format!("{name} ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
        .trim()
        .parse()
        .unwrap_or(f64::INFINITY) // `+Inf` renders unparseable by f64::parse
}

// ------------------------------------------------------------ subprocess

/// A `kamino-serve` child process bound to an ephemeral port.
struct ChaosServer {
    child: Child,
    addr: SocketAddr,
}

impl ChaosServer {
    /// Spawns the real binary over `dir` with optional chaos env vars.
    /// Pooling is disabled so sample streams are a pure function of the
    /// snapshot RNG cursor (bit-exact resume is asserted below).
    fn spawn(dir: &Path, env: &[(&str, &str)]) -> ChaosServer {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_kamino-serve"));
        cmd.arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--model-dir")
            .arg(dir)
            .arg("--threads")
            .arg("2")
            .arg("--pool-batches")
            .arg("0")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn kamino-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = reader.read_line(&mut line).expect("read child stdout");
            assert!(n > 0, "kamino-serve exited before printing its address");
            if let Some(rest) = line
                .trim()
                .strip_prefix("kamino-serve listening on http://")
            {
                break rest.parse().expect("listen address");
            }
        };
        // keep draining stdout so the child never blocks on a full pipe
        thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        ChaosServer { child, addr }
    }

    /// Waits for the child to die on its own (injected abort).
    fn wait_crash(&mut self, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: child never crashed");
            thread::sleep(Duration::from_millis(50));
        }
    }

    /// SIGKILL — no shutdown handshake, no flush.
    fn kill_hard(&mut self) {
        self.child.kill().expect("kill child");
        let _ = self.child.wait();
    }

    /// Graceful `POST /shutdown`; asserts a zero exit.
    fn shutdown_clean(&mut self, what: &str) {
        let (status, _) = request(self.addr, "POST", "/shutdown", None);
        assert!(status.contains("200"), "{what}: shutdown got {status}");
        let code = self.child.wait().expect("wait child");
        assert!(code.success(), "{what}: unclean exit {code:?}");
    }
}

impl Drop for ChaosServer {
    fn drop(&mut self) {
        if self.child.try_wait().ok().flatten().is_none() {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

fn chaos_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kamino-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos dir");
    dir
}

const FIT_BODY: &str =
    r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":11,"train_scale":0.03,"persist":true}"#;

/// Starts a fit and polls the model to a terminal state; returns the id.
fn fit_and_wait(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = request(addr, "POST", "/fit", Some(body));
    assert!(status.contains("202"), "fit rejected: {status} {reply}");
    let id = json(&reply).get("model_id").and_then(Json::as_u64).unwrap();
    wait_ready(addr, id);
    id
}

fn wait_ready(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (_, body) = request(addr, "GET", &format!("/models/{id}"), None);
        match json(&body).get("status").and_then(Json::as_str) {
            Some("ready") => return,
            Some("failed") => panic!("fit failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "fit never finished");
                thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn list_models(addr: SocketAddr) -> Vec<Json> {
    let (status, body) = request(addr, "GET", "/models", None);
    assert!(status.contains("200"), "{status}");
    match json(&body) {
        Json::Arr(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

// -------------------------------------------------------------- scenarios

/// Kill -9 between the durable `FitIntent` and the fit itself. On
/// restart the ledger replays: the model surfaces as `failed (crashed)`,
/// its budgeted ε stays counted as spent, and its id is never reused.
#[test]
fn crashed_fit_replays_as_failed_with_budget_spent() {
    let dir = chaos_dir("mid-fit");
    let mut s = ChaosServer::spawn(&dir, &[("KAMINO_CHAOS_FAULT", "fit.after_intent")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash("mid-fit abort");

    let ledger = dir.join("ledger.kamlog");
    assert!(ledger.is_file(), "intent was not made durable before crash");

    let mut s = ChaosServer::spawn(&dir, &[]);
    assert_healthy(s.addr, "ledger replay boot");

    // the interrupted fit is visible, failed, and explains itself
    let (status, body) = request(s.addr, "GET", "/models/1", None);
    assert!(status.contains("200"), "{status}: {body}");
    let info = json(&body);
    assert_eq!(info.get("status").and_then(Json::as_str), Some("failed"));
    let error = info.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(error.contains("crashed"), "unexpected error: {error}");
    assert!(
        error.contains("spent"),
        "ε accounting not surfaced: {error}"
    );

    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    assert_eq!(metric_value(&metrics, "kamino_ledger_replays_total"), 1.0);
    assert!(
        metric_value(&metrics, "kamino_ledger_epsilon_total") >= 1.0,
        "crashed ε was forgotten"
    );

    // the crashed id is burned: the next fit gets a fresh one, and the
    // ledger total now reflects both intents
    let id = fit_and_wait(s.addr, FIT_BODY);
    assert_eq!(id, 2, "crashed model id must never be reused");
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    assert!(metric_value(&metrics, "kamino_ledger_epsilon_total") >= 2.0);

    s.shutdown_clean("ledger replay scenario");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill -9 halfway through a ledger frame append. Replay must truncate
/// the torn tail and boot; ε that never became durable was never spent,
/// so no model is surfaced.
#[test]
fn torn_ledger_append_is_truncated_on_replay() {
    let dir = chaos_dir("torn-append");
    let mut s = ChaosServer::spawn(&dir, &[("KAMINO_CHAOS_FAULT", "ledger.torn_append")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash("torn append abort");
    assert!(
        std::fs::metadata(dir.join("ledger.kamlog"))
            .expect("ledger")
            .len()
            > 0,
        "the torn half-frame should be on disk"
    );

    let mut s = ChaosServer::spawn(&dir, &[]);
    assert_healthy(s.addr, "torn-tail boot");
    assert!(
        list_models(s.addr).is_empty(),
        "a torn (never-durable) intent must not surface a model"
    );
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    assert_eq!(metric_value(&metrics, "kamino_ledger_replays_total"), 0.0);

    // the truncated ledger accepts new appends: a fresh fit works
    let id = fit_and_wait(s.addr, FIT_BODY);
    assert_eq!(id, 1);
    s.shutdown_clean("torn append scenario");

    // and the next boot replays the clean intent+commit pair
    let mut s = ChaosServer::spawn(&dir, &[]);
    assert_healthy(s.addr, "post-truncation boot");
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    assert_eq!(metric_value(&metrics, "kamino_ledger_replays_total"), 2.0);
    s.shutdown_clean("torn append scenario reboot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill -9 after the snapshot tmp file is written but before its atomic
/// rename. Boot must quarantine the stale tmp, keep the fit's ε spent,
/// and hand the next fit a fresh id.
#[test]
fn crash_before_snapshot_rename_quarantines_the_stale_tmp() {
    let dir = chaos_dir("pre-rename");
    let mut s = ChaosServer::spawn(&dir, &[("KAMINO_CHAOS_FAULT", "snapshot.pre_rename")]);
    request_lossy(s.addr, "POST", "/fit", Some(FIT_BODY));
    s.wait_crash("pre-rename abort");

    let tmp_left = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().contains(".tmp-"));
    assert!(tmp_left, "crash should leave the tmp file behind");

    let mut s = ChaosServer::spawn(&dir, &[]);
    assert_healthy(s.addr, "stale-tmp boot");
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".quarantine"))
        .count();
    assert_eq!(quarantined, 1, "stale tmp must be quarantined");
    assert!(
        !dir.join("model-1.kamino").exists(),
        "a half-installed snapshot must never appear under its real name"
    );
    let (_, metrics) = request(s.addr, "GET", "/metrics", None);
    assert_eq!(
        metric_value(&metrics, "kamino_quarantined_files_total"),
        1.0
    );
    assert!(
        metric_value(&metrics, "kamino_ledger_epsilon_total") >= 1.0,
        "the committed fit's ε must stay spent even though its snapshot is gone"
    );

    // id 1 lives in the ledger, so the next fit is id 2
    let id = fit_and_wait(s.addr, FIT_BODY);
    assert_eq!(id, 2);
    assert!(dir.join("model-2.kamino").is_file());
    s.shutdown_clean("stale tmp scenario");
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL with a persisted model, then restart: the reloaded snapshot
/// must resume the sample stream bit-exactly — the same request yields
/// byte-identical rows before and after the crash.
#[test]
fn sample_streams_resume_bit_exact_after_kill() {
    let dir = chaos_dir("resume");
    let mut s = ChaosServer::spawn(&dir, &[]);
    let id = fit_and_wait(s.addr, FIT_BODY);
    let path = format!("/models/{id}/synthesize?n=60&batch=20&format=csv");

    let (status, before) = request(s.addr, "POST", &path, None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(before.lines().count(), 61, "header + 60 rows");
    s.kill_hard();

    let mut s = ChaosServer::spawn(&dir, &[]);
    assert_healthy(s.addr, "post-SIGKILL boot");
    let (status, after) = request(s.addr, "POST", &path, None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        before, after,
        "snapshot reload must resume the stream bit-exactly"
    );
    s.shutdown_clean("bit-exact resume scenario");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full disk (shimmed) fails snapshots with a clean 500 but never
/// takes the server down: fits still land in memory, streams still
/// serve, and shutdown stays graceful.
#[test]
fn disk_full_degrades_snapshots_not_liveness() {
    let dir = chaos_dir("disk-full");
    let mut s = ChaosServer::spawn(&dir, &[("KAMINO_CHAOS_DISK_FULL", "1")]);
    let id = fit_and_wait(s.addr, FIT_BODY);
    assert!(
        !dir.join(format!("model-{id}.kamino")).exists(),
        "nothing can be installed on a full disk"
    );

    let (status, body) = request(s.addr, "POST", &format!("/models/{id}/snapshot"), None);
    assert!(status.contains("500"), "snapshot on a full disk: {status}");
    assert!(body.contains("disk full"), "{body}");

    assert_healthy(s.addr, "disk-full snapshot failure");
    let (status, rows) = request(
        s.addr,
        "POST",
        &format!("/models/{id}/synthesize?n=10&batch=5&format=json"),
        None,
    );
    assert!(status.contains("200"), "{status}");
    assert_eq!(rows.lines().count(), 10);
    s.shutdown_clean("disk-full scenario");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------- overload (in-proc)

/// Reads one raw HTTP response (head + content-length body) off a
/// keep-alive connection, returning the unparsed head for header asserts.
fn read_head_and_body(stream: &mut TcpStream) -> (String, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read head"), 1, "eof in head");
        raw.push(byte[0]);
        assert!(raw.len() < 64 * 1024, "unterminated head");
    }
    let head = String::from_utf8_lossy(&raw).into_owned();
    let len: usize = head
        .to_ascii_lowercase()
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("no content length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("read body");
    (head, String::from_utf8_lossy(&body).into_owned())
}

/// Deadlines and load shedding under a saturated single-worker server:
/// queued requests past `--max-queue` get 429 + `Retry-After`; requests
/// that outlive `--request-timeout` get 503 + `Retry-After` (head not
/// sent) or a `kamino-trailer: deadline-expired` termination (mid-chunk);
/// and the server drains back to full service afterwards.
#[test]
fn overload_sheds_and_deadlines_expire() {
    let dir = chaos_dir("overload");
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        threads: 1,
        max_queue: 2,
        request_timeout: Duration::from_millis(500),
        pool_batches: 0,
        model_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));

    // calibrate: time a reference fit, then size the worker-occupying
    // fit so the single worker stays busy for several seconds while the
    // deadline/shed sequence below runs (fit cost scales ~linearly in
    // rows at fixed train_scale)
    let fast = r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":11,"train_scale":0.03,"persist":false}"#;
    let t0 = Instant::now();
    let (status, reply) = request(addr, "POST", "/fit", Some(fast));
    assert!(status.contains("202"), "{status}: {reply}");
    let model = json(&reply).get("model_id").and_then(Json::as_u64).unwrap();
    loop {
        let (_, body) = request(addr, "GET", &format!("/models/{model}"), None);
        match json(&body).get("status").and_then(Json::as_str) {
            Some("ready") => break,
            Some("failed") => panic!("fit failed: {body}"),
            _ => thread::sleep(Duration::from_millis(5)),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(300),
            "fit never finished"
        );
    }
    let t_fit = t0.elapsed().as_secs_f64().max(0.005);
    let slow_rows = ((100.0 * (8.0 / t_fit).ceil()) as usize).clamp(100, 100_000);

    // occupy the single worker; wait until the job is off the queue (so
    // admission sees depth 0) and confirmed running
    let slow = format!(
        r#"{{"corpus":"adult","rows":{slow_rows},"epsilon":1.0,"seed":13,"train_scale":0.03,"persist":false}}"#
    );
    let (status, reply) = request(addr, "POST", "/fit", Some(&slow));
    assert!(status.contains("202"), "{status}: {reply}");
    let slow_id = json(&reply).get("model_id").and_then(Json::as_u64).unwrap();
    let t0 = Instant::now();
    loop {
        let (_, metrics) = request(addr, "GET", "/metrics", None);
        if metric_value(&metrics, "kamino_queue_depth") == 0.0 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "fit never dequeued");
        thread::sleep(Duration::from_millis(10));
    }
    let (_, body) = request(addr, "GET", &format!("/models/{slow_id}"), None);
    assert_eq!(
        json(&body).get("status").and_then(Json::as_str),
        Some("fitting"),
        "occupier fit finished before the overload sequence — calibration too small"
    );

    // C1: admitted stream — head (and CSV header) go out immediately,
    // its batch job queues behind the fit (depth 1)
    let mut c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        c1,
        "POST /models/{model}/synthesize?n=10&batch=10&format=csv HTTP/1.1\r\nhost: c\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();

    // C3: admitted snapshot — queued, head not sent (depth 2 = max)
    let mut c3 = TcpStream::connect(addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        c3,
        "POST /models/{model}/snapshot HTTP/1.1\r\nhost: c\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    thread::sleep(Duration::from_millis(100));

    // C2: over the bound — shed at admission with 429 + Retry-After
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        c2,
        "POST /models/{model}/synthesize?n=10&batch=10&format=csv HTTP/1.1\r\nhost: c\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    let (head, body) = read_head_and_body(&mut c2);
    assert!(head.starts_with("HTTP/1.1 429"), "shed got {head}");
    assert!(
        head.to_ascii_lowercase().contains("\r\nretry-after: 1\r\n"),
        "429 without Retry-After: {head}"
    );
    assert!(body.contains("overloaded"), "{body}");

    // C3 expires with its head unsent: 503 + Retry-After
    let (head, body) = read_head_and_body(&mut c3);
    assert!(head.starts_with("HTTP/1.1 503"), "deadline got {head}");
    assert!(
        head.to_ascii_lowercase().contains("\r\nretry-after: 1\r\n"),
        "503 without Retry-After: {head}"
    );
    assert!(body.contains("deadline expired"), "{body}");

    // C1 expires mid-chunk: the stream terminates with the trailer and
    // the connection closes instead of desyncing
    let mut raw = Vec::new();
    c1.read_to_end(&mut raw).expect("read expired stream");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.ends_with("0\r\nkamino-trailer: deadline-expired\r\n\r\n"),
        "missing deadline trailer: ...{:?}",
        &text[text.len().saturating_sub(80)..]
    );

    // mid-overload metrics: 1 shed, 2 expiries, both queued jobs visible,
    // speculation paused at half the bound
    let (_, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(metric_value(&metrics, "kamino_shed_total"), 1.0);
    assert_eq!(metric_value(&metrics, "kamino_deadline_expired_total"), 2.0);
    assert_eq!(metric_value(&metrics, "kamino_queue_depth"), 2.0);
    assert_eq!(metric_value(&metrics, "kamino_speculation_paused"), 1.0);

    // the server recovers fully: the slow fit completes, late completions
    // for expired requests are dropped, and a fresh stream serves again
    wait_ready(addr, slow_id);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, rows) = request(
            addr,
            "POST",
            &format!("/models/{model}/synthesize?n=10&batch=10&format=json"),
            None,
        );
        if status.contains("200") {
            assert_eq!(rows.lines().count(), 10);
            break;
        }
        assert!(
            status.contains("429") || status.contains("503"),
            "unexpected drain status {status}"
        );
        assert!(Instant::now() < deadline, "server never drained");
        thread::sleep(Duration::from_millis(100));
    }

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "{status}");
    handle.join().expect("server thread panicked");
    let _ = std::fs::remove_dir_all(&dir);
}
