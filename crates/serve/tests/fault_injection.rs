//! Fault-injection suite for the serving event loop: torn writes,
//! premature disconnects mid-stream, oversized heads and bodies,
//! pipelined keep-alive traffic, slow readers and rapid churn. The
//! invariant under every fault: the server never panics, never desyncs
//! a keep-alive connection, answers malformed input with the right
//! 4xx/5xx, and stays fully live for the next client.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use kamino_serve::{Json, ServeConfig, Server};

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (String, String) {
    let text = String::from_utf8_lossy(raw).into_owned();
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// The liveness probe run after every fault: the server must still
/// answer a clean request correctly.
fn assert_alive(addr: SocketAddr, scenario: &str) {
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert!(status.contains("200"), "dead after {scenario}: {status}");
    assert_eq!(
        json(&body).get("status").and_then(Json::as_str),
        Some("ok"),
        "unhealthy after {scenario}"
    );
}

/// Reads one full HTTP response off a keep-alive connection (header +
/// content-length or chunked body), leaving the stream usable.
fn read_one_response(stream: &mut TcpStream) -> (String, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // read the head byte-wise until the blank line
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read head"), 1, "eof in head");
        raw.push(byte[0]);
        assert!(raw.len() < 64 * 1024, "unterminated head");
    }
    let head = String::from_utf8_lossy(&raw).into_owned();
    let status = head.lines().next().unwrap_or("").to_string();
    let lower = head.to_ascii_lowercase();
    if lower.contains("transfer-encoding: chunked") {
        let mut payload = Vec::new();
        loop {
            let mut size_line = Vec::new();
            while !size_line.ends_with(b"\r\n") {
                assert_eq!(stream.read(&mut byte).unwrap(), 1, "eof in chunk size");
                size_line.push(byte[0]);
            }
            let size =
                usize::from_str_radix(String::from_utf8_lossy(&size_line).trim(), 16).unwrap();
            let mut chunk = vec![0u8; size + 2];
            stream.read_exact(&mut chunk).expect("read chunk");
            if size == 0 {
                break;
            }
            payload.extend_from_slice(&chunk[..size]);
        }
        (status, String::from_utf8_lossy(&payload).into_owned())
    } else {
        let len: usize = lower
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .expect("no content length")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("read body");
        (status, String::from_utf8_lossy(&body).into_owned())
    }
}

fn boot() -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        threads: 4,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn boot_with_dir(dir: &std::path::Path) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        threads: 2,
        model_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn fit_tiny_model(addr: SocketAddr) -> u64 {
    let (status, body) = request(
        addr,
        "POST",
        "/fit",
        Some(r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":11,"train_scale":0.03}"#),
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id = json(&body).get("model_id").and_then(Json::as_u64).unwrap();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (_, body) = request(addr, "GET", &format!("/models/{id}"), None);
        match json(&body).get("status").and_then(Json::as_str) {
            Some("ready") => return id,
            Some("failed") => panic!("fit failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "fit did not finish");
                thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn faults_never_kill_or_desync_the_server() {
    let (addr, handle) = boot();
    let id = fit_tiny_model(addr);

    // --- torn writes: a request dribbled in byte-sized pieces ---------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let raw = b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n";
        for piece in raw.chunks(7) {
            s.write_all(piece).unwrap();
            s.flush().unwrap();
            thread::sleep(Duration::from_millis(5));
        }
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        let (status, body) = parse_response(&out);
        assert!(status.contains("200"), "torn write got {status}");
        assert_eq!(json(&body).get("status").and_then(Json::as_str), Some("ok"));
    }
    assert_alive(addr, "torn writes");

    // --- torn write split inside the body ----------------------------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let body = r#"{"corpus":"nope"}"#;
        write!(
            s,
            "POST /fit HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        let (a, b) = body.as_bytes().split_at(5);
        s.write_all(a).unwrap();
        s.flush().unwrap();
        thread::sleep(Duration::from_millis(20));
        s.write_all(b).unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        let (status, body) = parse_response(&out);
        assert!(status.contains("400"), "split body got {status}");
        assert!(body.contains("unknown corpus"));
    }
    assert_alive(addr, "split body");

    // --- oversized head: 431, connection closed ----------------------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n");
        // dribble far more header bytes than MAX_HEAD without terminating
        let filler = format!("x-junk: {}\r\n", "a".repeat(1024));
        for _ in 0..64 {
            if s.write_all(filler.as_bytes()).is_err() {
                break; // server already slammed the door — also fine
            }
        }
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.starts_with("HTTP/1.1 431"),
            "oversized head got {:?}",
            text.lines().next()
        );
    }
    assert_alive(addr, "oversized head");

    // --- oversized body: 413 from the declared length alone ----------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(b"POST /fit HTTP/1.1\r\nhost: t\r\ncontent-length: 999999999\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let (status, _) = parse_response(&out);
        assert!(status.contains("413"), "oversized body got {status}");
    }
    assert_alive(addr, "oversized body");

    // --- garbage bytes: 400, not a hang or a crash --------------------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(b"\x16\x03\x01\x02\x00 not http at all\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let (status, _) = parse_response(&out);
        assert!(
            status.contains("400") || status.contains("505"),
            "garbage got {status}"
        );
    }
    assert_alive(addr, "garbage bytes");

    // --- pipelined keep-alive: three requests in one write, three
    // --- responses in order, then a clean reuse of the connection -----
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let one = "GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n";
        let synth = format!(
            "POST /models/{id}/synthesize?n=12&batch=5&format=json HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n"
        );
        s.write_all(format!("{one}{synth}{one}").as_bytes())
            .unwrap();
        let (st1, _) = read_one_response(&mut s);
        let (st2, rows) = read_one_response(&mut s);
        let (st3, _) = read_one_response(&mut s);
        assert!(st1.contains("200") && st2.contains("200") && st3.contains("200"));
        assert_eq!(rows.lines().count(), 12, "pipelined stream desynced");
        // the same connection still serves a fourth request
        s.write_all(one.as_bytes()).unwrap();
        let (st4, _) = read_one_response(&mut s);
        assert!(st4.contains("200"), "keep-alive connection desynced");
    }
    assert_alive(addr, "pipelined keep-alive");

    // --- premature disconnect mid-chunked-response --------------------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        write!(
            s,
            "POST /models/{id}/synthesize?n=100000&batch=200&format=csv HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n"
        )
        .unwrap();
        // take a few KB of the stream, then vanish
        let mut buf = [0u8; 4096];
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "no stream bytes before disconnect");
        drop(s);
    }
    assert_alive(addr, "mid-stream disconnect");

    // --- half-close mid-stream (FIN while the server streams) ---------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        write!(
            s,
            "POST /models/{id}/synthesize?n=2000&batch=100&format=csv HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n"
        )
        .unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        // the response must still arrive complete
        let (status, body) = read_one_response(&mut s);
        assert!(status.contains("200"), "half-close got {status}");
        assert_eq!(
            body.lines().count(),
            2001,
            "half-close truncated the stream"
        );
    }
    assert_alive(addr, "half-close mid-stream");

    // --- slow reader: drain a stream a few bytes at a time ------------
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        write!(
            s,
            "POST /models/{id}/synthesize?n=300&batch=50&format=csv HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: 0\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        let mut buf = [0u8; 512];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    raw.extend_from_slice(&buf[..n]);
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("slow read failed: {e}"),
            }
        }
        let (status, body) = parse_response(&raw);
        assert!(status.contains("200"), "slow reader got {status}");
        assert_eq!(body.lines().count(), 301, "slow reader lost rows");
    }
    assert_alive(addr, "slow reader");

    // --- rapid connect/disconnect churn -------------------------------
    for _ in 0..50 {
        let s = TcpStream::connect(addr).unwrap();
        drop(s);
    }
    {
        // and churn with partial requests in flight
        for _ in 0..20 {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(b"POST /fit HTTP/1.1\r\nhost:");
            drop(s);
        }
    }
    assert_alive(addr, "connect/disconnect churn");

    // the full fault gauntlet never killed a worker or the loop: a last
    // real synthesize still produces exact rows
    let (status, body) = request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=25&batch=10&format=json"),
        None,
    );
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.lines().count(), 25);

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "{status}");
    handle.join().expect("server thread panicked");
}

/// Corrupt model-dir contents at boot: a truncated snapshot, a snapshot
/// with a flipped payload byte (bad CRC) and a stale atomic-install tmp
/// file left by a crash. Boot must quarantine all three — rename to
/// `*.quarantine`, never load them — and serve the intact snapshot.
#[test]
fn corrupt_snapshots_are_quarantined_at_boot_not_fatal() {
    let dir = std::env::temp_dir().join(format!("kamino-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let fitted = {
        let d = kamino_datasets::adult_like(80, 3);
        let mut cfg = kamino_core::KaminoConfig::new(kamino_dp::Budget::new(1.0, 1e-6));
        cfg.train_scale = 0.02;
        cfg.embed_dim = 8;
        cfg.seed = 71;
        kamino_core::fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg)
    };
    for name in ["model-1.kamino", "model-2.kamino", "model-3.kamino"] {
        kamino_serve::save_fitted(&fitted, &dir.join(name)).unwrap();
    }
    // model-1: truncated to half its length (torn write)
    let bytes = std::fs::read(dir.join("model-1.kamino")).unwrap();
    std::fs::write(dir.join("model-1.kamino"), &bytes[..bytes.len() / 2]).unwrap();
    // model-2: one payload byte flipped (bad section CRC)
    let mut bytes = std::fs::read(dir.join("model-2.kamino")).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(dir.join("model-2.kamino"), &bytes).unwrap();
    // a stale tmp file from an interrupted atomic install
    std::fs::write(dir.join("model-9.kamino.tmp-777-0"), b"half a snapshot").unwrap();

    let (addr, handle) = boot_with_dir(&dir);
    assert_alive(addr, "boot over corrupt snapshots");

    // only the intact snapshot is registered
    let (status, body) = request(addr, "GET", "/models", None);
    assert!(status.contains("200"), "{status}");
    let listed = match json(&body) {
        Json::Arr(items) => items.len(),
        other => panic!("expected array, got {other:?}"),
    };
    assert_eq!(listed, 1, "corrupt snapshots must not register: {body}");

    // the corrupt files were renamed aside, not deleted and not loaded
    assert!(dir.join("model-1.kamino.quarantine").is_file());
    assert!(dir.join("model-2.kamino.quarantine").is_file());
    assert!(dir.join("model-9.kamino.tmp-777-0.quarantine").is_file());
    assert!(!dir.join("model-1.kamino").exists());
    assert!(!dir.join("model-2.kamino").exists());

    let (status, body) = request(addr, "GET", "/metrics", None);
    assert!(status.contains("200"), "{status}");
    assert!(
        body.contains("kamino_quarantined_files_total 3"),
        "quarantine counter missing: {}",
        body.lines()
            .filter(|l| l.contains("quarantine"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // the survivor still serves
    let (status, body) = request(
        addr,
        "POST",
        "/models/3/synthesize?n=10&batch=5&format=json",
        None,
    );
    assert!(status.contains("200"), "{status}: {body}");
    assert_eq!(body.lines().count(), 10);

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "{status}");
    handle.join().expect("server thread panicked");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: `POST /shutdown` while a chunked `/synthesize` response
/// is in flight must drain that response to completion — full row count
/// and a proper terminating chunk — before the server exits.
#[test]
fn shutdown_drains_in_flight_chunked_streams() {
    let (addr, handle) = boot();
    let id = fit_tiny_model(addr);

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    write!(
        s,
        "POST /models/{id}/synthesize?n=3000&batch=250&format=csv HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    // make sure the stream has started before shutting down
    let mut first = [0u8; 256];
    let n = s.read(&mut first).unwrap();
    assert!(n > 0);

    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "{status}");

    // keep reading: the stream must terminate cleanly, not get cut
    let mut raw = first[..n].to_vec();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => panic!("stream died during drain: {e}"),
        }
    }
    let (status, body) = parse_response(&raw);
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        body.lines().count(),
        3001,
        "shutdown truncated an in-flight stream"
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.ends_with("0\r\n\r\n"),
        "stream is missing its terminating chunk"
    );

    handle.join().expect("server thread panicked");
}
