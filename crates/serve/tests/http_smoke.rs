//! End-to-end server smoke: boot on an ephemeral port, drive
//! `/fit` → `/models/{id}` → `/synthesize` → `/healthz` → `/shutdown`
//! with a tiny std client, including ≥ 4 concurrent `/synthesize`
//! clients against one model — no data races, no ε re-spend — and a
//! persistence round-trip through `--model-dir`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use kamino_serve::{Json, ServeConfig, Server};

/// One HTTP exchange over a fresh connection (`Connection: close`),
/// returning (status line, body). Chunked bodies are de-chunked.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head.lines().next().unwrap_or("").to_string();
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Polls `GET /models/{id}` until the fit finishes (panics on `failed`).
fn wait_ready(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = request(addr, "GET", &format!("/models/{id}"), None);
        assert!(status.contains("200"), "{status}: {body}");
        let info = json(&body);
        match info.get("status").and_then(Json::as_str) {
            Some("ready") => return info,
            Some("failed") => panic!("fit failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "fit did not finish in time");
                thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn boot(model_dir: Option<std::path::PathBuf>) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        model_dir,
        threads: 6,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let (status, _) = request(addr, "POST", "/shutdown", None);
    assert!(status.contains("200"), "{status}");
    handle.join().expect("server thread panicked");
}

#[test]
fn fit_synthesize_concurrent_clients_and_clean_shutdown() {
    let (addr, handle) = boot(None);

    // liveness before any model exists
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(json(&body).get("status").and_then(Json::as_str), Some("ok"));

    // unknown model and unknown route fail cleanly
    let (status, _) = request(addr, "GET", "/models/99", None);
    assert!(status.contains("404"), "{status}");
    let (status, _) = request(addr, "GET", "/nope", None);
    assert!(status.contains("404"), "{status}");

    // async fit
    let (status, body) = request(
        addr,
        "POST",
        "/fit",
        Some(r#"{"corpus":"adult","rows":120,"epsilon":1.0,"seed":7,"train_scale":0.05}"#),
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id = json(&body).get("model_id").and_then(Json::as_u64).unwrap();

    let info = wait_ready(addr, id);
    let eps = info.get("achieved_epsilon").and_then(Json::as_f64).unwrap();
    assert!(eps > 0.0 && eps <= 1.0, "achieved ε {eps} out of budget");

    // a single synthesize stream, CSV with one header line
    let (status, body) = request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=50&batch=20&format=csv"),
        None,
    );
    assert!(status.contains("200"), "{status}: {body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 51, "header + 50 rows, got {}", lines.len());
    assert!(lines[0].contains(','), "header row missing: {:?}", lines[0]);

    // NDJSON format
    let (status, body) = request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=10&batch=4&format=json"),
        None,
    );
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.lines().count(), 10);
    for line in body.lines() {
        assert!(matches!(json(line), Json::Obj(_)));
    }

    // ≥ 4 concurrent clients against the same loaded model
    let workers: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                let (status, body) = request(
                    addr,
                    "POST",
                    &format!("/models/{id}/synthesize?n=40&batch=10&format=csv"),
                    None,
                );
                assert!(status.contains("200"), "{status}");
                assert_eq!(body.lines().count(), 41, "header + 40 rows");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    // ε unchanged after 220 synthesized rows: sampling re-spends nothing
    let (_, body) = request(addr, "GET", &format!("/models/{id}"), None);
    let eps_after = json(&body)
        .get("achieved_epsilon")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(eps_after, eps);

    // metrics saw the traffic (Prometheus text exposition)
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("# TYPE kamino_rows_synthesized_total counter"));
    let rows: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("kamino_rows_synthesized_total "))
        .expect("rows counter missing")
        .parse()
        .expect("rows counter not an integer");
    assert!(rows >= 220, "only {rows} rows counted");
    assert!(body.contains("kamino_ready_models 1\n"), "{body}");
    // the obs registry is merged in: request-latency histograms and the
    // DP budget ledger from the fit above
    assert!(
        body.contains("kamino_http_request_duration_seconds_bucket"),
        "latency histogram missing"
    );
    assert!(
        body.contains("kamino_dp_plans_total 1"),
        "budget ledger missing"
    );
    assert!(body.contains("kamino_dp_sigma{mechanism=\"m2_dpsgd\"}"));

    // the chrome trace is valid JSON and contains the request spans
    let (status, body) = request(addr, "POST", "/debug/trace", None);
    assert!(status.contains("200"), "{status}");
    let trace = json(&body);
    assert!(matches!(trace.get("traceEvents"), Some(Json::Arr(_))));
    assert!(body.contains("serve.request"));
    assert!(body.contains("fit.training"));

    // bad requests answer 400, not a dropped connection
    let (status, _) = request(addr, "POST", &format!("/models/{id}/synthesize?n=0"), None);
    assert!(status.contains("400"), "{status}");
    let (status, _) = request(addr, "POST", "/fit", Some("{not json"));
    assert!(status.contains("400"), "{status}");

    shutdown(addr, handle);
}

/// Reads a single-sample Prometheus series (exact line-prefix match).
fn metric(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .find_map(|l| l.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
}

#[test]
fn pooled_path_serves_aligned_traffic_and_exports_gauges() {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        threads: 4,
        max_models: 2,
        pool_batches: 3,
        pool_rows: 20,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));

    let (status, body) = request(
        addr,
        "POST",
        "/fit",
        Some(r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":9,"train_scale":0.03}"#),
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id = json(&body).get("model_id").and_then(Json::as_u64).unwrap();
    wait_ready(addr, id);

    // aligned traffic: batch == --pool-rows, so serving triggers refills
    // and later chunks are served from the speculation ring
    let (status, body) = request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=100&batch=20&format=csv"),
        None,
    );
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.lines().count(), 101, "header + 100 rows");

    // background refills land asynchronously; wait for the ring to show
    // depth, then drain it with more aligned traffic
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = request(addr, "GET", "/metrics", None);
        let depth = metric(&body, &format!("kamino_pool_depth{{model=\"{id}\"}} "));
        if depth.unwrap_or(0.0) > 0.0 {
            break;
        }
        assert!(Instant::now() < deadline, "pool never refilled: {body}");
        thread::sleep(Duration::from_millis(50));
    }
    let (status, body) = request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=40&batch=20&format=csv"),
        None,
    );
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.lines().count(), 41);

    // pool and LRU telemetry is on /metrics
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("# TYPE kamino_pool_depth gauge"), "{body}");
    assert!(
        metric(&body, "kamino_pool_hits_total").unwrap_or(0.0) >= 1.0,
        "aligned traffic never hit the pool: {body}"
    );
    assert_eq!(metric(&body, "kamino_resident_models"), Some(1.0));
    assert_eq!(metric(&body, "kamino_max_resident_models"), Some(2.0));
    assert_eq!(metric(&body, "kamino_model_evictions_total"), Some(0.0));
    assert!(metric(&body, "kamino_pool_misses_total").is_some());
    assert!(metric(&body, "kamino_model_loads_total").is_some());

    shutdown(addr, handle);
}

#[test]
fn model_dir_persists_models_across_restarts() {
    let dir = std::env::temp_dir().join(format!(
        "kamino-serve-smoke-{}-{}",
        std::process::id(),
        "persist"
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // first server: fit (auto-persists when --model-dir is set)
    let (addr, handle) = boot(Some(dir.clone()));
    let (status, body) = request(
        addr,
        "POST",
        "/fit",
        Some(r#"{"corpus":"adult","rows":100,"epsilon":1.0,"seed":3,"train_scale":0.03}"#),
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id = json(&body).get("model_id").and_then(Json::as_u64).unwrap();
    let info = wait_ready(addr, id);
    let eps = info.get("achieved_epsilon").and_then(Json::as_f64).unwrap();
    shutdown(addr, handle);
    assert!(dir.join(format!("model-{id}.kamino")).is_file());

    // second server: the snapshot is registered at boot without being
    // decoded — the slot reports `unloaded` until a request touches it
    let (addr, handle) = boot(Some(dir.clone()));
    let (status, body) = request(addr, "GET", "/models/1", None);
    assert!(status.contains("200"), "{status}: {body}");
    let info = json(&body);
    assert_eq!(info.get("status").and_then(Json::as_str), Some("unloaded"));
    // first synthesize lazily loads the model and serves rows at the
    // original ε without re-fitting
    let (status, body) = request(addr, "POST", "/models/1/synthesize?n=25&batch=25", None);
    assert!(status.contains("200"), "{status}");
    assert_eq!(body.lines().count(), 26);
    let (status, body) = request(addr, "GET", "/models/1", None);
    assert!(status.contains("200"), "{status}: {body}");
    let info = json(&body);
    assert_eq!(info.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(
        info.get("achieved_epsilon").and_then(Json::as_f64),
        Some(eps)
    );

    // ids stay stable across restarts: a new fit must take the next free
    // id, never re-using (and overwriting the snapshot of) model 1
    let (status, body) = request(
        addr,
        "POST",
        "/fit",
        Some(r#"{"corpus":"br2000","rows":80,"epsilon":1.0,"seed":5,"train_scale":0.03}"#),
    );
    assert!(status.contains("202"), "{status}: {body}");
    let id2 = json(&body).get("model_id").and_then(Json::as_u64).unwrap();
    assert_eq!(id2, 2, "restarted server must not renumber model 1");
    wait_ready(addr, id2);
    shutdown(addr, handle);
    assert!(dir.join("model-1.kamino").is_file());
    assert!(dir.join("model-2.kamino").is_file());

    let _ = std::fs::remove_dir_all(&dir);
}
