//! Unit-level tests for the model registry's lazy-loading LRU: eviction
//! order, pin protection, capacity-1 thrash, and id stability for
//! foreign snapshot names.

use std::path::PathBuf;

use kamino_core::{fit_kamino, FittedKamino, KaminoConfig};
use kamino_dp::Budget;
use kamino_serve::pool::Format;
use kamino_serve::registry::{Registry, SlotStatus};
use kamino_serve::PoolConfig;

fn tiny_fitted(seed: u64) -> FittedKamino {
    let d = kamino_datasets::adult_like(80, 3);
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.train_scale = 0.02;
    cfg.embed_dim = 8;
    cfg.seed = seed;
    fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kamino-lru-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn status_name(registry: &Registry, id: u64) -> &'static str {
    registry.get(id).unwrap().status.lock().unwrap().name()
}

#[test]
fn eviction_follows_least_recently_touched_order() {
    let dir = temp_dir("order");
    let registry = Registry::new(2, PoolConfig::disabled(), Some(dir.clone()));
    for seed in [31, 32, 33] {
        let slot = registry.create_fitting();
        assert!(registry.finish_fit(&slot, Ok(tiny_fitted(seed)), true));
    }
    // the third install pushed the registry over capacity: the oldest
    // touch (model 1) must be the one evicted
    assert_eq!(status_name(&registry, 1), "unloaded");
    assert_eq!(status_name(&registry, 2), "ready");
    assert_eq!(status_name(&registry, 3), "ready");
    assert_eq!(registry.stats().resident, 2);
    assert_eq!(registry.stats().evictions, 1);
    assert!(dir.join("model-1.kamino").is_file());

    // touch 2 so 3 becomes the LRU, then reload 1: 3 must be evicted
    let slot2 = registry.get(2).unwrap();
    registry.touch(&slot2);
    let slot1 = registry.get(1).unwrap();
    registry.ensure_resident(&slot1).unwrap();
    assert_eq!(status_name(&registry, 1), "ready");
    assert_eq!(status_name(&registry, 2), "ready");
    assert_eq!(status_name(&registry, 3), "unloaded");
    assert_eq!(registry.stats().loads, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pinned_models_are_never_evicted() {
    let dir = temp_dir("pins");
    let registry = Registry::new(1, PoolConfig::disabled(), Some(dir.clone()));
    let slot_a = registry.create_fitting();
    assert!(registry.finish_fit(&slot_a, Ok(tiny_fitted(41)), true));
    let slot_b = registry.create_fitting();
    assert!(registry.finish_fit(&slot_b, Ok(tiny_fitted(42)), true));
    // B's install evicted A (capacity 1)
    assert_eq!(status_name(&registry, slot_a.id), "unloaded");

    // pin A while it streams: reloading it must evict B, and no amount
    // of pressure may push A out while the pin lives
    let pin = registry.pin(&slot_a);
    registry.ensure_resident(&slot_a).unwrap();
    assert_eq!(status_name(&registry, slot_a.id), "ready");
    registry.ensure_resident(&slot_b).unwrap();
    registry.evict_over_capacity();
    assert_eq!(
        status_name(&registry, slot_a.id),
        "ready",
        "a pinned model must survive eviction pressure"
    );
    // over capacity with one unpinned candidate: B went back to disk
    assert_eq!(status_name(&registry, slot_b.id), "unloaded");

    // dropping the pin makes A evictable again
    drop(pin);
    registry.ensure_resident(&slot_b).unwrap();
    assert_eq!(status_name(&registry, slot_a.id), "unloaded");
    assert_eq!(status_name(&registry, slot_b.id), "ready");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Serves `rows` from a slot's pool/model under the registry, the way a
/// worker batch job does.
fn serve_rows(registry: &Registry, id: u64, rows: usize) -> String {
    let slot = registry.get(id).unwrap();
    registry.ensure_resident(&slot).unwrap();
    let mut guard = slot.resident.lock().unwrap();
    let r = guard.as_mut().unwrap();
    let (text, n, _hit) = r.pool.take_batch(&mut r.fitted, rows, Format::Csv).unwrap();
    assert_eq!(n as usize, rows);
    text.to_string()
}

#[test]
fn capacity_one_thrash_keeps_both_streams_byte_exact() {
    let dir = temp_dir("thrash");
    let pool_cfg = PoolConfig {
        batches: 2,
        rows: 5,
    };
    let registry = Registry::new(1, pool_cfg, Some(dir.clone()));
    let slot_a = registry.create_fitting();
    assert!(registry.finish_fit(&slot_a, Ok(tiny_fitted(51)), true));
    let slot_b = registry.create_fitting();
    assert!(registry.finish_fit(&slot_b, Ok(tiny_fitted(52)), true));
    let (a, b) = (slot_a.id, slot_b.id);

    // speculate ahead on whichever model is resident so evictions have
    // real speculation to rewind
    let refill = |id: u64| {
        let slot = registry.get(id).unwrap();
        let mut guard = slot.resident.lock().unwrap();
        if let Some(r) = guard.as_mut() {
            r.pool.refill_one(&mut r.fitted);
        }
    };

    // reference streams: the same snapshots decoded once, never evicted
    let mut ref_a = kamino_serve::load_fitted(&dir.join(format!("model-{a}.kamino"))).unwrap();
    let mut ref_b = kamino_serve::load_fitted(&dir.join(format!("model-{b}.kamino"))).unwrap();
    let expect = |f: &mut FittedKamino, rows: usize| {
        let inst = f.sample(rows);
        kamino_data::csv::rows_text(f.schema(), &inst).unwrap()
    };

    // interleave the two models through a single residency slot; every
    // serve evicts the other model mid-stream
    for round in 0..3 {
        refill(a);
        let got = serve_rows(&registry, a, 5);
        assert_eq!(got, expect(&mut ref_a, 5), "model A round {round}");
        // misaligned size on B forces the rewind path under thrash too
        let rows_b = if round == 1 { 3 } else { 5 };
        let got = serve_rows(&registry, b, rows_b);
        assert_eq!(got, expect(&mut ref_b, rows_b), "model B round {round}");
    }
    let stats = registry.stats();
    assert!(
        stats.evictions >= 5,
        "capacity-1 interleave must thrash (got {} evictions)",
        stats.evictions
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn boot_scan_keeps_server_ids_and_numbers_foreign_snapshots_after() {
    let dir = temp_dir("foreign");
    // a server-written snapshot with an embedded id, plus two foreign
    // files an operator dropped in
    kamino_serve::save_fitted(&tiny_fitted(61), &dir.join("model-3.kamino")).unwrap();
    kamino_serve::save_fitted(&tiny_fitted(62), &dir.join("alpha.kamino")).unwrap();
    kamino_serve::save_fitted(&tiny_fitted(63), &dir.join("beta.kamino")).unwrap();
    // and one file that is not a snapshot at all: skipped, not fatal
    std::fs::write(dir.join("junk.kamino"), b"not a snapshot").unwrap();

    let registry = Registry::new(0, PoolConfig::disabled(), Some(dir.clone()));
    registry
        .boot_scan(&kamino_obs::ObsHandle::disabled())
        .unwrap();
    assert_eq!(registry.len(), 3);
    // model-3 keeps its id; foreign names get the next free ids in
    // sorted-path order
    let ids: Vec<u64> = registry.list().iter().map(|s| s.id).collect();
    assert_eq!(ids, vec![3, 4, 5]);
    assert_eq!(
        registry.get(3).unwrap().snapshot_path().unwrap(),
        dir.join("model-3.kamino")
    );
    assert_eq!(
        registry.get(4).unwrap().snapshot_path().unwrap(),
        dir.join("alpha.kamino")
    );
    // nothing was decoded at boot
    for slot in registry.list() {
        assert!(matches!(
            &*slot.status.lock().unwrap(),
            SlotStatus::Unloaded(None)
        ));
    }
    // a fresh fit takes the next free id after the scan
    let slot = registry.create_fitting();
    assert_eq!(slot.id, 6);

    let _ = std::fs::remove_dir_all(&dir);
}
