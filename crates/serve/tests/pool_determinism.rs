//! Property tests for the deterministic sample pool: under random
//! schemas, seeds, pool depths and request interleavings, the pooled
//! stream must be **byte identical** to the direct (pool-less) sample
//! stream, and an evict → persist → reload cycle mid-stream must resume
//! the stream bit-exactly.
//!
//! Fitting is expensive, so fitted models are cached per
//! (corpus, seed) as encoded snapshot bytes and decoded fresh for every
//! proptest case — decoding is cheap and guarantees case isolation.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use kamino_core::{fit_kamino, FittedKamino, KaminoConfig};
use kamino_dp::Budget;
use kamino_serve::pool::{ndjson_rows, Format};
use kamino_serve::snapshot::{decode_fitted, encode_fitted};
use kamino_serve::{PoolConfig, SamplePool};
use proptest::prelude::*;

type SnapshotCache = Mutex<BTreeMap<(u8, u64), Arc<Vec<u8>>>>;

fn snapshot_bytes(corpus: u8, seed: u64) -> Arc<Vec<u8>> {
    static CACHE: OnceLock<SnapshotCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry((corpus, seed))
        .or_insert_with(|| {
            let d = match corpus {
                0 => kamino_datasets::adult_like(80, 3),
                _ => kamino_datasets::br2000_like(70, 4),
            };
            let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
            cfg.train_scale = 0.02;
            cfg.embed_dim = 8;
            cfg.seed = 70 + seed;
            let fitted = fit_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
            Arc::new(encode_fitted(&fitted))
        })
        .clone()
}

/// One step of a randomized serving schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Serve `rows` in the given format (misaligned sizes force the
    /// rewind path; aligned ones may hit the ring).
    Take(usize, Format),
    /// Serve exactly the pool's batch size — the hit path when the ring
    /// has speculation queued.
    TakeAligned(Format),
    /// A background refill tick: speculate one more batch ahead.
    Refill,
    /// LRU eviction mid-stream: rewind speculation, persist the model to
    /// snapshot bytes, drop it, and reload from those bytes with an
    /// empty ring — the registry's `try_evict` in miniature.
    Evict,
}

prop_compose! {
    /// One step of the serving schedule, weighted toward serves (the
    /// vendored proptest shim has no `prop_oneof`, so the weighting is a
    /// tag draw).
    fn op()(tag in 0u8..9, rows in 1usize..10, json in any::<bool>()) -> Op {
        let format = if json { Format::Json } else { Format::Csv };
        match tag {
            0..=2 => Op::Take(rows, format),
            3..=5 => Op::TakeAligned(format),
            6..=7 => Op::Refill,
            _ => Op::Evict,
        }
    }
}

/// The direct path: what the pre-pool server streamed — sample, encode.
fn direct(f: &mut FittedKamino, rows: usize, format: Format) -> (String, u64) {
    let inst = f.sample(rows);
    let n = inst.n_rows() as u64;
    let text = match format {
        Format::Csv => kamino_data::csv::rows_text(f.schema(), &inst).expect("encode csv"),
        Format::Json => ndjson_rows(f.schema(), &inst),
    };
    (text, n)
}

/// Runs a schedule against a pooled model and a direct reference decoded
/// from the same snapshot, asserting byte equality on every serve and
/// canonical-cursor equality after every op.
fn run_schedule(corpus: u8, seed: u64, cfg: PoolConfig, ops: &[Op]) {
    let bytes = snapshot_bytes(corpus, seed);
    let mut pooled = decode_fitted(&bytes).expect("decode pooled");
    let mut reference = decode_fitted(&bytes).expect("decode reference");
    let mut pool = SamplePool::new(cfg);

    for (i, op) in ops.iter().enumerate() {
        let serve = match op {
            Op::Take(rows, format) => Some((*rows, *format)),
            Op::TakeAligned(format) => Some((cfg.rows, *format)),
            _ => None,
        };
        match (op, serve) {
            (_, Some((rows, format))) => {
                let (got, n, _hit) = pool
                    .take_batch(&mut pooled, rows, format)
                    .expect("take_batch");
                let (want, want_n) = direct(&mut reference, rows, format);
                assert_eq!(n, want_n, "op {i}: row count diverged");
                assert_eq!(
                    &*got, want,
                    "op {i} ({op:?}): pooled bytes diverged from direct"
                );
            }
            (Op::Refill, _) => {
                pool.refill_one(&mut pooled);
            }
            (Op::Evict, _) => {
                // the registry's eviction protocol: rewind speculation so
                // the persisted cursor is the canonical one, snapshot,
                // reload cold
                pool.rewind(&mut pooled);
                let frozen = encode_fitted(&pooled);
                pooled = decode_fitted(&frozen).expect("decode after evict");
                pool = SamplePool::new(cfg);
            }
            (Op::Take(..) | Op::TakeAligned(_), _) => unreachable!(),
        }
        // the persistable cursor must always equal the observable stream
        // position — i.e. the reference model's live cursor
        assert_eq!(
            pool.persist_state(&pooled),
            reference.rng_state(),
            "op {i} ({op:?}): canonical cursor drifted from the stream position"
        );
        assert!(pool.depth() <= cfg.batches, "op {i}: ring overfilled");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of takes (aligned and misaligned, both formats)
    /// and refill ticks yields exactly the direct stream, byte for byte.
    #[test]
    fn pooled_stream_is_byte_identical_to_direct(
        corpus in 0u8..2,
        seed in 0u64..2,
        batches in 0usize..4,
        rows in 1usize..7,
        ops in prop::collection::vec(op(), 1..14),
    ) {
        // strip evictions: this property isolates pure pool behavior
        let ops: Vec<Op> = ops
            .into_iter()
            .filter(|op| !matches!(op, Op::Evict))
            .collect();
        run_schedule(corpus, seed, PoolConfig { batches, rows }, &ops);
    }

    /// Evicting mid-stream — rewind, persist, reload with a cold pool —
    /// resumes the stream bit-exactly no matter where in the schedule
    /// the eviction lands.
    #[test]
    fn evict_reload_mid_stream_resumes_byte_exactly(
        corpus in 0u8..2,
        seed in 0u64..2,
        batches in 1usize..4,
        rows in 1usize..7,
        ops in prop::collection::vec(op(), 2..14),
        at in 0usize..12,
    ) {
        // guarantee at least one eviction with speculation in flight,
        // landed at a random point in the schedule
        let mut ops = ops;
        let at = at % ops.len();
        ops.insert(at, Op::Evict);
        ops.insert(at, Op::Refill);
        run_schedule(corpus, seed, PoolConfig { batches, rows }, &ops);
    }
}
