//! Property tests for the `.kamino` snapshot codec: across randomized
//! schemas, instances, budgets and shard counts, save → load must resume
//! the exact deterministic sample stream, and corrupted or
//! wrong-version files must fail loudly instead of yielding a wrong
//! model.

use kamino_core::{fit_kamino, FittedKamino, KaminoConfig};
use kamino_data::{Attribute, Instance, Schema, Value};
use kamino_dp::Budget;
use kamino_serve::snapshot::{decode_fitted, encode_fitted, SnapshotError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a randomized-but-consistent dataset: categorical `a`, its FD
/// dependent `b`, and a numeric `x`, with the hard FD `a → b` planted so
/// constraint-aware sampling has something to preserve.
fn build_dataset(
    card_a: usize,
    card_b: usize,
    bins: usize,
    rows: usize,
    data_seed: u64,
) -> (Schema, Instance, Vec<kamino_constraints::DenialConstraint>) {
    let schema = Schema::new(vec![
        Attribute::categorical_indexed("a", card_a).unwrap(),
        Attribute::categorical_indexed("b", card_b).unwrap(),
        Attribute::numeric("x", 0.0, 9.0, bins).unwrap(),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(data_seed);
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            let a = rng.gen_range(0..card_a) as u32;
            vec![
                Value::Cat(a),
                Value::Cat(a % card_b as u32),
                Value::Num(rng.gen_range(0.0..9.0)),
            ]
        })
        .collect();
    let instance = Instance::from_rows(&schema, &rows).unwrap();
    let dc = kamino_constraints::parse_dc(
        &schema,
        "fd_ab",
        "!(t1.a == t2.a & t1.b != t2.b)",
        kamino_constraints::Hardness::Hard,
    )
    .unwrap();
    (schema, instance, vec![dc])
}

#[allow(clippy::too_many_arguments)]
fn fit(
    card_a: usize,
    card_b: usize,
    bins: usize,
    rows: usize,
    data_seed: u64,
    fit_seed: u64,
    epsilon: f64,
    shards: usize,
) -> FittedKamino {
    let (schema, instance, dcs) = build_dataset(card_a, card_b, bins, rows, data_seed);
    let mut cfg = KaminoConfig::new(if epsilon.is_infinite() {
        Budget::non_private()
    } else {
        Budget::new(epsilon, 1e-6)
    });
    cfg.train_scale = 0.02;
    cfg.embed_dim = 8;
    cfg.seed = fit_seed;
    cfg.shards = shards;
    fit_kamino(&schema, &instance, &dcs, &cfg)
}

proptest! {
    // each case fits a real (tiny) model, so keep the count modest
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary schema/weights/params → save → load → the next 64
    /// sampled rows are bit-identical to the unsaved session's.
    #[test]
    fn save_load_resumes_bit_identical_stream(
        card_a in 2usize..5,
        card_b in 2usize..6,
        bins in 4usize..12,
        rows in 30usize..70,
        data_seed in 0u64..1000,
        fit_seed in 0u64..1000,
        epsilon in prop::sample::select(vec![0.8, 1.0, f64::INFINITY]),
        shards in prop::sample::select(vec![1usize, 2]),
        warmup in prop::sample::select(vec![0usize, 13]),
    ) {
        let mut live = fit(card_a, card_b, bins, rows, data_seed, fit_seed, epsilon, shards);
        if warmup > 0 {
            // snapshots taken mid-stream must also resume exactly
            let _ = live.sample(warmup);
        }
        let bytes = encode_fitted(&live);
        let mut loaded = decode_fitted(&bytes).expect("snapshot must decode");
        prop_assert_eq!(loaded.achieved_epsilon().to_bits(), live.achieved_epsilon().to_bits());
        prop_assert_eq!(&loaded.sequence, &live.sequence);
        prop_assert_eq!(loaded.n_input(), live.n_input());
        prop_assert_eq!(loaded.rng_state(), live.rng_state());
        let a = live.sample(64);
        let b = loaded.sample(64);
        prop_assert_eq!(a, b);
        // still in lockstep on a second draw
        prop_assert_eq!(live.sample(5), loaded.sample(5));
    }

    /// Flipping any single byte of the payload (or truncating the file)
    /// never yields a successfully loaded model: sections are CRC-sealed.
    #[test]
    fn corruption_never_loads_silently(
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
        data_seed in 0u64..100,
    ) {
        let live = fit(3, 3, 6, 35, data_seed, 7, 1.0, 1);
        let bytes = encode_fitted(&live);
        let mut corrupt = bytes.clone();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        corrupt[pos] ^= 1 << bit;
        // either an explicit error, or (if the flip landed in the section
        // table's offsets/CRCs) still an error — never a quiet success
        // with different bytes
        match decode_fitted(&corrupt) {
            Err(_) => {}
            Ok(reloaded) => {
                // the only acceptable "success" is a flip that decode
                // cannot see... which cannot exist because every byte is
                // either header (validated) or CRC-sealed payload.
                prop_assert!(
                    false,
                    "corrupted snapshot loaded (pos {pos}, bit {bit}, eps {})",
                    reloaded.achieved_epsilon()
                );
            }
        }
    }
}

#[test]
fn wrong_version_is_refused_with_a_clear_error() {
    let live = fit(3, 3, 6, 35, 1, 2, 1.0, 1);
    let mut bytes = encode_fitted(&live);
    // bump the version field (bytes 8..12, little-endian)
    bytes[8] = 2;
    match decode_fitted(&bytes) {
        Err(SnapshotError::UnsupportedVersion(2)) => {}
        Err(other) => panic!("expected UnsupportedVersion(2), got {other:?}"),
        Ok(_) => panic!("expected UnsupportedVersion(2), got a loaded model"),
    }
}

#[test]
fn truncation_is_refused() {
    let live = fit(3, 4, 8, 40, 3, 4, 1.0, 1);
    let bytes = encode_fitted(&live);
    for cut in [0, 7, 12, 16, bytes.len() / 3, bytes.len() - 1] {
        assert!(decode_fitted(&bytes[..cut]).is_err(), "cut at {cut} loaded");
    }
}

#[test]
fn sharded_session_roundtrips_too() {
    // the sharded engine draws per-shard seeds from the session RNG, so
    // the cursor discipline must hold across shard counts
    let mut live = fit(4, 4, 8, 60, 9, 10, 1.0, 2);
    let _ = live.sample(17);
    let bytes = encode_fitted(&live);
    let mut loaded = decode_fitted(&bytes).unwrap();
    assert_eq!(live.sample(64), loaded.sample(64));
}
