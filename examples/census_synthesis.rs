//! Census synthesis with downstream evaluation: compare Kamino against
//! PrivBayes on the paper's three utility metrics — DC violations, the
//! classification task (train-on-synthetic, test-on-true), and marginal
//! distances.
//!
//! ```sh
//! cargo run --release --example census_synthesis
//! ```

use kamino::baselines::{PrivBayes, Synthesizer};
use kamino::constraints::violation_percentage;
use kamino::core::{run_kamino, KaminoConfig};
use kamino::data::Instance;
use kamino::datasets::adult_like;
use kamino::dp::Budget;
use kamino::eval::marginals::{summarize, tvd_all_pairs, tvd_all_singles};
use kamino::eval::tasks::evaluate_classification;

fn evaluate(name: &str, data: &kamino::datasets::Dataset, synth: &Instance) {
    let viol: f64 = data
        .dcs
        .iter()
        .map(|dc| violation_percentage(dc, synth))
        .sum();
    let summary = evaluate_classification(&data.schema, &data.instance, synth, 3);
    let (tvd1, _, _) = summarize(&tvd_all_singles(&data.schema, &data.instance, synth));
    let (tvd2, _, _) = summarize(&tvd_all_pairs(&data.schema, &data.instance, synth));
    println!(
        "{name:10}  DC violations {viol:6.2}%   accuracy {:.3}   F1 {:.3}   1-way TVD {tvd1:.3}   2-way TVD {tvd2:.3}",
        summary.mean_accuracy(),
        summary.mean_f1(),
    );
}

fn main() {
    let budget = Budget::new(1.0, 1e-6);
    let data = adult_like(800, 11);
    println!("Adult-like, n = 800, (eps, delta) = (1, 1e-6); nine-classifier Metric II\n");

    // Kamino
    let mut cfg = KaminoConfig::new(budget);
    cfg.seed = 5;
    cfg.train_scale = 0.4;
    cfg.lr = 0.25;
    cfg.embed_dim = 12;
    let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);
    evaluate("Kamino", &data, &report.instance);

    // PrivBayes
    let pb = PrivBayes::default().synthesize(&data.schema, &data.instance, budget, 800, 5);
    evaluate("PrivBayes", &data, &pb);

    // Truth ceiling (train and test on the true data)
    evaluate("Truth", &data, &data.instance);

    println!(
        "\nExpected shape (paper Figs. 3-4, Table 2): Kamino at ~0% violations\n\
         with accuracy/F1 at or above PrivBayes and below the Truth ceiling."
    );
}
