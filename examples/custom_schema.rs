//! Bring your own data: define a schema, load rows from CSV, declare
//! denial constraints in the text syntax, and synthesize. This is the
//! end-to-end path a downstream user of the library follows.
//!
//! ```sh
//! cargo run --release --example custom_schema
//! ```

use kamino::prelude::*;

fn main() {
    // 1. Declare the schema: a small patient-visits relation.
    let schema = Schema::new(vec![
        Attribute::categorical(
            "clinic",
            vec!["north".into(), "south".into(), "east".into()],
        )
        .unwrap(),
        Attribute::categorical("region", vec!["metro".into(), "rural".into()]).unwrap(),
        Attribute::integer("age", 0.0, 99.0, 10).unwrap(),
        // Equal bin counts matter here: Algorithm 4 orders non-FD
        // attributes by domain size, and visit_cost must be sampled
        // *before* copay so the cost→copay order constraint and the
        // minor-cap constraint never squeeze a row into an infeasible
        // band (see DESIGN.md on interacting constraints).
        Attribute::numeric("visit_cost", 0.0, 5_000.0, 20).unwrap(),
        Attribute::numeric("copay", 0.0, 500.0, 20).unwrap(),
    ])
    .unwrap();

    // 2. Load the "private" data (inline CSV here; any BufRead works).
    let csv = "\
clinic,region,age,visit_cost,copay
north,metro,34,120,12
north,metro,61,950,95
south,rural,45,300,30
south,rural,23,80,8
east,metro,71,2100,210
east,metro,55,600,60
north,metro,29,150,15
south,rural,38,410,41
east,metro,64,1800,180
north,metro,42,510,51
";
    // replicate the mini-table to a workable size
    let base = kamino::data::csv::read_csv(&schema, csv.as_bytes()).unwrap();
    let mut instance = Instance::empty(&schema);
    for rep in 0..60 {
        for i in 0..base.n_rows() {
            let mut row = base.row(i);
            // jitter ages so the table is not 60 exact copies
            if let Value::Num(age) = row[2] {
                row[2] = Value::Num((age + (rep % 3) as f64).min(99.0));
            }
            instance.push_row(&schema, &row).unwrap();
        }
    }

    // 3. Declare constraints in the text syntax.
    let dcs = vec![
        // each clinic sits in exactly one region (an FD)
        parse_dc(
            &schema,
            "clinic_region",
            "!(t1.clinic == t2.clinic & t1.region != t2.region)",
            Hardness::Hard,
        )
        .unwrap(),
        // copay scales with cost: no pair may have higher cost but lower copay
        parse_dc(
            &schema,
            "cost_copay",
            "!(t1.visit_cost > t2.visit_cost & t1.copay < t2.copay)",
            Hardness::Hard,
        )
        .unwrap(),
        // minors are never billed more than 1000
        parse_dc(
            &schema,
            "minor_cap",
            "!(t1.age < 18 & t1.visit_cost > 1000)",
            Hardness::Hard,
        )
        .unwrap(),
    ];

    // 4. Synthesize under (ε = 2, δ = 1e-6).
    let mut cfg = KaminoConfig::new(Budget::new(2.0, 1e-6));
    cfg.seed = 1;
    cfg.train_scale = 0.3;
    let report = run_kamino(&schema, &instance, &dcs, &cfg);

    println!(
        "synthesized {} rows at epsilon = {:.3}",
        report.instance.n_rows(),
        report.params.achieved_epsilon
    );
    for dc in &dcs {
        println!(
            "  {}: truth {:.2}%, synthetic {:.2}% violating",
            dc.name,
            violation_percentage(dc, &instance),
            violation_percentage(dc, &report.instance)
        );
    }
    // show a few synthetic rows
    let mut out = Vec::new();
    kamino::data::csv::write_csv(&schema, &report.instance, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    println!("\nfirst synthetic rows:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }
}
