//! Privacy/utility trade-off: sweep ε over the paper's Figure 6 grid and
//! watch the parameter search (Algorithm 6) trade DP-SGD iterations for
//! noise, and utility respond.
//!
//! ```sh
//! cargo run --release --example privacy_sweep
//! ```

use kamino::constraints::violation_percentage;
use kamino::core::{run_kamino, KaminoConfig};
use kamino::datasets::adult_like;
use kamino::dp::Budget;
use kamino::eval::marginals::{summarize, tvd_all_singles};

fn main() {
    let data = adult_like(600, 21);
    println!("Adult-like, n = 600, delta = 1e-6\n");
    println!(
        "{:>6}  {:>9}  {:>5}  {:>7}  {:>7}  {:>9}  {:>9}",
        "eps", "achieved", "T", "sigma_d", "sigma_g", "1-way TVD", "violations"
    );
    for eps in [0.1, 0.2, 0.4, 0.8, 1.6, f64::INFINITY] {
        let budget = if eps.is_infinite() {
            Budget::non_private()
        } else {
            Budget::new(eps, 1e-6)
        };
        let mut cfg = KaminoConfig::new(budget);
        cfg.seed = 13;
        cfg.train_scale = 0.3;
        let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);
        let (tvd1, _, _) = summarize(&tvd_all_singles(
            &data.schema,
            &data.instance,
            &report.instance,
        ));
        let viol: f64 = data
            .dcs
            .iter()
            .map(|dc| violation_percentage(dc, &report.instance))
            .sum();
        println!(
            "{:>6}  {:>9.3}  {:>5}  {:>7.2}  {:>7.3}  {:>9.3}  {:>9.2}%",
            if eps.is_infinite() {
                "inf".to_string()
            } else {
                format!("{eps}")
            },
            report.params.achieved_epsilon,
            report.params.t,
            report.params.sigma_d,
            report.params.sigma_g,
            tvd1,
            viol
        );
    }
    println!(
        "\nExpected shape (paper Fig. 6): marginal distance shrinks as eps grows;\n\
         hard-DC violations stay at 0% at every budget — structure preservation\n\
         does not degrade with privacy, only statistical fidelity does."
    );
}
