//! Quickstart: synthesize a census-like table under differential privacy
//! and check that its denial constraints survived.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kamino::constraints::violation_percentage;
use kamino::core::{run_kamino, KaminoConfig};
use kamino::datasets::adult_like;
use kamino::dp::Budget;

fn main() {
    // The "private" data: 1,000 census-like rows with two hard DCs
    // (education → education_num, and capital gain/loss monotonicity).
    let data = adult_like(1_000, 42);
    println!(
        "true data: {} rows × {} attributes",
        data.instance.n_rows(),
        data.schema.len()
    );
    for dc in &data.dcs {
        println!("  constraint {}: {}", dc.name, dc.display(&data.schema));
    }

    // Synthesize under (ε = 1, δ = 1e-6)-DP.
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.seed = 7;
    cfg.train_scale = 0.3; // fraction of the paper's training budget
    let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);

    println!("\nsynthesized {} rows", report.instance.n_rows());
    println!(
        "privacy spent: epsilon = {:.3} (budget 1.0)",
        report.params.achieved_epsilon
    );
    println!(
        "schema sequence: {:?}",
        report
            .sequence
            .iter()
            .map(|&a| data.schema.attr(a).name.as_str())
            .collect::<Vec<_>>()
    );
    println!("\nconstraint violations (percentage of tuple pairs):");
    for dc in &data.dcs {
        println!(
            "  {}: truth {:.2}%  synthetic {:.2}%",
            dc.name,
            violation_percentage(dc, &data.instance),
            violation_percentage(dc, &report.instance),
        );
    }

    // Write the synthetic instance out as CSV.
    let mut buf = Vec::new();
    kamino::data::csv::write_csv(&data.schema, &report.instance, &mut buf).unwrap();
    let path = std::env::temp_dir().join("kamino_quickstart.csv");
    std::fs::write(&path, &buf).unwrap();
    println!("\nsynthetic data written to {}", path.display());
}
