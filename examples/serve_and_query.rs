//! Boot the synthesis server in-process, fit the Adult corpus over HTTP,
//! and stream synthetic rows back over loopback — the full
//! "fit offline, sample online" loop of `kamino-serve`, with nothing but
//! the standard library on the client side.
//!
//! ```bash
//! cargo run --release --example serve_and_query
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use kamino::serve::{Json, ServeConfig, Server};

/// One HTTP exchange over a fresh loopback connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: example\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    raw
}

/// Strips headers and de-chunks the body.
fn body_of(response: &str) -> String {
    let (head, payload) = response.split_once("\r\n\r\n").expect("malformed response");
    if !head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        return payload.to_string();
    }
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

fn main() {
    // 1. boot the server on an ephemeral loopback port
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".into(),
        model_dir: None,
        threads: 4,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server"));
    println!("server up on http://{addr}");

    // 2. start an async fit job on the Adult corpus
    let fit = body_of(&request(
        addr,
        "POST",
        "/fit",
        r#"{"corpus":"adult","rows":300,"epsilon":1.0,"delta":1e-6,"seed":7,"train_scale":0.05}"#,
    ));
    let fit = Json::parse(&fit).expect("fit response");
    let id = fit
        .get("model_id")
        .and_then(Json::as_u64)
        .expect("model id");
    println!("fit job accepted: model {id}");

    // 3. poll until the model is ready
    let info = loop {
        let body = body_of(&request(addr, "GET", &format!("/models/{id}"), ""));
        let info = Json::parse(&body).expect("model info");
        match info.get("status").and_then(Json::as_str) {
            Some("ready") => break info,
            Some("failed") => panic!("fit failed: {body}"),
            _ => thread::sleep(Duration::from_millis(150)),
        }
    };
    let eps = info
        .get("achieved_epsilon")
        .and_then(Json::as_f64)
        .expect("achieved epsilon");
    println!("model {id} ready: achieved ε = {eps:.4} (≤ 1.0 by the planner's construction)");

    // 4. stream 10 synthetic rows as CSV — pure post-processing, no
    //    further privacy cost no matter how many rows are drawn
    let csv = body_of(&request(
        addr,
        "POST",
        &format!("/models/{id}/synthesize?n=10&batch=5&format=csv"),
        "",
    ));
    println!("\n10 synthetic Adult rows:\n{csv}");

    // 5. Prometheus metrics (request-latency histograms, rows/sec, the DP
    //    budget ledger), then a graceful shutdown
    let metrics = body_of(&request(addr, "GET", "/metrics", ""));
    let rows_line = metrics
        .lines()
        .find(|l| l.starts_with("kamino_rows_synthesized_total"))
        .expect("rows counter");
    println!("metrics sample: {rows_line}");
    let _ = request(addr, "POST", "/shutdown", "");
    handle.join().expect("server thread");
    println!("server shut down cleanly");
}
