//! A synthesis service core: fit once under a planner-derived privacy
//! budget, then stream sharded row batches on demand.
//!
//! ```sh
//! cargo run --release --example sharded_service
//! ```

use kamino::constraints::{violation_percentage, Hardness};
use kamino::datasets::adult_like;
use kamino::obs::clock;
use kamino::Synthesizer;

fn main() {
    // The "private" data held by the service operator.
    let data = adult_like(2_000, 42);
    println!(
        "true data: {} rows × {} attributes, {} DCs",
        data.instance.n_rows(),
        data.schema.len(),
        data.dcs.len()
    );

    // Fit spends the (ε, δ) budget exactly once. The BudgetPlanner solves
    // the per-mechanism σ's of Theorem 1 so the composed RDP cost fits.
    let t0 = clock::now_nanos();
    let mut session = Synthesizer::builder()
        .epsilon(1.0)
        .delta(1e-6)
        .seed(7)
        .shards(4) // synthesize 4 row shards concurrently per column pass
        .train_scale(0.3)
        .build()
        .fit(&data.schema, &data.instance, &data.dcs);
    println!(
        "fitted in {:.1}s: epsilon spent {:.3} of 1.0 (sigma_g {:.2}, sigma_d {:.2})",
        clock::secs_since(t0),
        session.achieved_epsilon(),
        session.params().sigma_g,
        session.params().sigma_d,
    );

    // Serve traffic: every batch is post-processing — no further budget.
    let t0 = clock::now_nanos();
    let mut served = 0usize;
    for (i, batch) in session.synthesize_batches(1_500, 500).enumerate() {
        served += batch.n_rows();
        let worst = data
            .dcs
            .iter()
            .filter(|dc| dc.hardness == Hardness::Hard)
            .map(|dc| violation_percentage(dc, &batch))
            // kamino-lint: allow(float_fold) -- max accumulator: 0.0 is the identity for max over non-negative values, not a sum seed
            .fold(0.0, f64::max);
        println!(
            "batch {i}: {} rows, worst hard-DC violation {worst:.2}%",
            batch.n_rows()
        );
    }
    println!(
        "served {served} rows in {:.1}s (budget unchanged)",
        clock::secs_since(t0)
    );
}
