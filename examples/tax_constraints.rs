//! Hard-constraint stress test: the Tax-like corpus chains large-domain
//! functional dependencies (zip → city, zip → state, areacode → state, two
//! state-conditioned exemption FDs) with a salary/rate order constraint.
//! Demonstrates constraint-aware sequencing, the hard-FD lookup
//! optimization (§7.3.6), and the order-DC feasible-band sampling.
//!
//! ```sh
//! cargo run --release --example tax_constraints
//! ```

use kamino::constraints::violation_percentage;
use kamino::core::{run_kamino, KaminoConfig};
use kamino::datasets::tax_like;
use kamino::dp::Budget;
use kamino::obs::clock;

fn main() {
    let data = tax_like(800, 3);
    println!("Tax-like, n = 800, 6 hard DCs, zip domain = 400\n");

    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.seed = 9;
    cfg.train_scale = 0.3;

    for lookup in [false, true] {
        cfg.hard_fd_lookup = lookup;
        let start = clock::now_nanos();
        let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);
        let elapsed = clock::secs_since(start);
        println!(
            "hard_fd_lookup = {lookup}: sampled in {:.2}s (total {elapsed:.2}s)",
            report.timings.sampling.as_secs_f64(),
        );
        for dc in &data.dcs {
            println!(
                "  {}: synthetic violations {:.2}%",
                dc.name,
                violation_percentage(dc, &report.instance)
            );
        }
        println!(
            "  sequence: {:?}\n",
            report
                .sequence
                .iter()
                .map(|&a| data.schema.attr(a).name.as_str())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "Note how the sequencing heuristic placed each FD determinant (zip,\n\
         areacode, state) before its dependents, and how all six hard DCs\n\
         hold in the synthetic data either way — the lookup path is just faster."
    );
}
