//! # Kamino: constraint-aware differentially private data synthesis
//!
//! A from-scratch Rust reproduction of *Kamino: Constraint-Aware
//! Differentially Private Data Synthesis* (Ge, Mohapatra, He, Ilyas —
//! VLDB 2021). Given a private database instance, its schema, a set of
//! denial constraints with hardness information, and a privacy budget
//! (ε, δ), Kamino produces a synthetic instance that preserves both the
//! data's statistical profile and its *structure* — the functional
//! dependencies and denial constraints that i.i.d. synthesizers break.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`data`] | schemas, typed columnar instances, quantizers, CSV, encoders |
//! | [`constraints`] | denial-constraint AST/parser, violation engine, incremental counters |
//! | [`dp`] | Gaussian/Laplace mechanisms, RDP accountant, calibration |
//! | [`nn`] | per-example-gradient neural substrate (DP-SGD) |
//! | [`core`] | the Kamino pipeline: sequencing, training, weights, sampling |
//! | [`baselines`] | PrivBayes, NIST-PGM, DP-VAE, PATE-GAN, independent |
//! | [`eval`] | nine classifiers, marginal TVD, DC metrics, repair |
//! | [`datasets`] | seeded generators for the paper's four corpora |
//! | [`serve`] | `.kamino` model snapshots + the pure-std HTTP synthesis server |
//! | [`obs`] | spans, metric registry, DP budget ledger, Prometheus/chrome-trace export |
//!
//! plus the top-level [`synthesizer`] module — the [`Synthesizer`] session
//! API: fit once under a planner-derived budget, then stream row batches
//! (sharded across cores) without further privacy cost. Sessions can be
//! saved to a `.kamino` snapshot and loaded later (or on another host) —
//! a loaded session resumes the exact deterministic sample stream.
//!
//! ## Quickstart
//!
//! ```
//! use kamino::datasets::adult_like;
//! use kamino::core::{run_kamino, KaminoConfig};
//! use kamino::dp::Budget;
//! use kamino::constraints::violation_percentage;
//!
//! // "true" private data: census-like, with two hard denial constraints
//! let data = adult_like(300, 42);
//!
//! // synthesize under (ε = 1, δ = 1e-6)-differential privacy
//! let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
//! cfg.train_scale = 0.05; // doc-test speed; use 1.0 for real runs
//! cfg.seed = 7;
//! let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);
//!
//! assert_eq!(report.instance.n_rows(), 300);
//! assert!(report.params.achieved_epsilon <= 1.0);
//! // the hard constraints hold in the synthetic data
//! for dc in &data.dcs {
//!     assert_eq!(violation_percentage(dc, &report.instance), 0.0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use kamino_baselines as baselines;
pub use kamino_constraints as constraints;
pub use kamino_core as core;
pub use kamino_data as data;
pub use kamino_datasets as datasets;
pub use kamino_dp as dp;
pub use kamino_eval as eval;
pub use kamino_nn as nn;
pub use kamino_obs as obs;
pub use kamino_serve as serve;

pub mod synthesizer;

pub use synthesizer::{SynthesisSession, Synthesizer, SynthesizerBuilder};

/// Most-used items in one import.
pub mod prelude {
    pub use crate::synthesizer::{SynthesisSession, Synthesizer};
    pub use kamino_constraints::{parse_dc, violation_percentage, DenialConstraint, Hardness};
    pub use kamino_core::{run_kamino, KaminoConfig, KaminoReport};
    pub use kamino_data::{Attribute, Instance, Schema, Value};
    pub use kamino_dp::{Budget, BudgetPlanner, RunShape};
    pub use kamino_serve::{ServeConfig, Server, SnapshotError};
}
