//! The `Synthesizer` session API: fit once, synthesize forever.
//!
//! [`run_kamino`](kamino_core::run_kamino) is a one-shot call: it spends
//! the privacy budget and hands back a single instance. A synthesis
//! *service* wants the opposite shape — pay the (ε, δ) cost once at fit
//! time, then serve row batches on demand, sharded across cores. That is
//! what [`Synthesizer`] provides:
//!
//! ```
//! use kamino::synthesizer::Synthesizer;
//! use kamino::datasets::adult_like;
//!
//! let data = adult_like(300, 42);
//! let mut session = Synthesizer::builder()
//!     .epsilon(1.0)
//!     .delta(1e-6)
//!     .shards(2)
//!     .seed(7)
//!     .train_scale(0.05) // doc-test speed; use 1.0 for real runs
//!     .build()
//!     .fit(&data.schema, &data.instance, &data.dcs);
//!
//! assert!(session.achieved_epsilon() <= 1.0);
//! // stream 250 rows in batches of 100 (100 + 100 + 50)
//! let batches: Vec<_> = session.synthesize_batches(250, 100).collect();
//! assert_eq!(batches.len(), 3);
//! assert_eq!(batches.iter().map(|b| b.n_rows()).sum::<usize>(), 250);
//! ```
//!
//! The σ's behind the fit come from the
//! [`BudgetPlanner`](kamino_dp::BudgetPlanner), so the composed RDP cost
//! of Theorem 1's three mechanisms converts to at most the requested ε —
//! [`SynthesisSession::achieved_epsilon`] is that converted value, and
//! sampling (including every batch) is pure post-processing that spends
//! nothing further.
//!
//! Sessions are durable: [`SynthesisSession::save`] writes a versioned
//! `.kamino` snapshot (see `kamino::serve::snapshot`) and
//! [`Synthesizer::load`] brings it back — on this host or another —
//! resuming the deterministic sample stream bit-exactly where the saved
//! session stopped, with no additional privacy cost.

use std::path::Path;

use kamino_constraints::DenialConstraint;
use kamino_core::{fit_kamino, FittedKamino, KaminoConfig, PrivacyParams};
use kamino_data::{Instance, Schema};
use kamino_dp::Budget;
use kamino_serve::SnapshotError;

/// Builder for a [`Synthesizer`]. Obtained from [`Synthesizer::builder`];
/// every knob has a sensible default except the budget (which defaults to
/// (ε = 1, δ = 1e-6) — call [`SynthesizerBuilder::non_private`] for ε = ∞).
#[derive(Debug, Clone)]
pub struct SynthesizerBuilder {
    epsilon: f64,
    delta: f64,
    non_private: bool,
    cfg: KaminoConfig,
}

impl Default for SynthesizerBuilder {
    fn default() -> Self {
        SynthesizerBuilder {
            epsilon: 1.0,
            delta: 1e-6,
            non_private: false,
            cfg: KaminoConfig::new(Budget::new(1.0, 1e-6)),
        }
    }
}

impl SynthesizerBuilder {
    /// Total privacy budget ε (Theorem 1's composition fits inside it).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self.non_private = epsilon.is_infinite();
        self
    }

    /// Privacy parameter δ (default `1e-6`).
    pub fn delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.delta = delta;
        self
    }

    /// Disables privacy noise entirely (the paper's ε = ∞ runs).
    pub fn non_private(mut self) -> Self {
        self.non_private = true;
        self
    }

    /// Row shards synthesized concurrently per column pass (default: the
    /// `KAMINO_SHARDS` environment variable, else 1 — the sequential
    /// sampler). See `kamino_core::sampler` for the shard/repair
    /// semantics.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        self.cfg.shards = shards;
        self
    }

    /// RNG seed — every source of randomness derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Fraction of the paper's DP-SGD iteration range to train for
    /// (quality knob; always privacy-safe).
    pub fn train_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "train scale must be positive");
        self.cfg.train_scale = scale;
        self
    }

    /// MCMC re-sampling amount as a fraction of each sampled batch.
    pub fn mcmc_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "mcmc ratio must be nonnegative");
        self.cfg.mcmc_ratio = ratio;
        self
    }

    /// Enables the §7.3.6 hard-FD lookup fast path.
    pub fn hard_fd_lookup(mut self, on: bool) -> Self {
        self.cfg.hard_fd_lookup = on;
        self
    }

    /// Full access to the underlying [`KaminoConfig`] for knobs the
    /// builder does not surface.
    pub fn configure(mut self, f: impl FnOnce(&mut KaminoConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Finalizes the configuration.
    pub fn build(mut self) -> Synthesizer {
        self.cfg.budget = if self.non_private {
            Budget::non_private()
        } else {
            Budget::new(self.epsilon, self.delta)
        };
        Synthesizer { cfg: self.cfg }
    }
}

/// A configured synthesis engine. [`Synthesizer::fit`] spends the privacy
/// budget (trains the model privately) and returns a
/// [`SynthesisSession`] that samples without further cost.
///
/// # Examples
///
/// Build → fit → stream batches:
///
/// ```
/// use kamino::Synthesizer;
/// use kamino::datasets::adult_like;
///
/// let data = adult_like(120, 3);
/// let mut session = Synthesizer::builder()
///     .epsilon(1.0)
///     .seed(5)
///     .train_scale(0.02) // doc-test speed; use 1.0 for real runs
///     .build()
///     .fit(&data.schema, &data.instance, &data.dcs);
///
/// assert!(session.achieved_epsilon() <= 1.0);
/// let rows: usize = session
///     .synthesize_batches(130, 50) // 50 + 50 + 30
///     .map(|batch| batch.n_rows())
///     .sum();
/// assert_eq!(rows, 130);
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    cfg: KaminoConfig,
}

impl Synthesizer {
    /// Starts building a synthesizer.
    pub fn builder() -> SynthesizerBuilder {
        SynthesizerBuilder::default()
    }

    /// The resolved pipeline configuration.
    pub fn config(&self) -> &KaminoConfig {
        &self.cfg
    }

    /// Runs Algorithm 1's private phases (sequencing, parameter planning,
    /// model training, weight learning) against the true instance. This is
    /// the only call that touches private data; everything on the
    /// returned session is post-processing.
    pub fn fit(
        &self,
        schema: &Schema,
        instance: &Instance,
        dcs: &[DenialConstraint],
    ) -> SynthesisSession {
        SynthesisSession {
            fitted: fit_kamino(schema, instance, dcs, &self.cfg),
        }
    }

    /// Loads a session saved by [`SynthesisSession::save`]. The loaded
    /// session continues the deterministic sample stream exactly where
    /// the saved one stopped, at the ε it originally spent — loading
    /// costs no privacy budget.
    ///
    /// # Examples
    ///
    /// See [`SynthesisSession::save`] for the save half; loading resumes
    /// the stream bit-exactly:
    ///
    /// ```
    /// # use kamino::Synthesizer;
    /// # use kamino::datasets::adult_like;
    /// # let data = adult_like(100, 7);
    /// # let mut session = Synthesizer::builder()
    /// #     .epsilon(1.0).seed(9).train_scale(0.02).build()
    /// #     .fit(&data.schema, &data.instance, &data.dcs);
    /// let path = std::env::temp_dir()
    ///     .join(format!("kamino-doc-load-{}.kamino", std::process::id()));
    /// session.save(&path)?;
    /// let mut restored = Synthesizer::load(&path)?;
    /// // both sessions now produce the same next rows
    /// assert_eq!(session.synthesize(20), restored.synthesize(20));
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), kamino::serve::SnapshotError>(())
    /// ```
    pub fn load(path: impl AsRef<Path>) -> Result<SynthesisSession, SnapshotError> {
        Ok(SynthesisSession {
            fitted: kamino_serve::load_fitted(path.as_ref())?,
        })
    }
}

/// A fitted synthesis session: holds the trained model and an advancing
/// RNG stream. Sampling methods take `&mut self` because successive draws
/// continue that stream (two equal-seeded sessions replay identically).
pub struct SynthesisSession {
    fitted: FittedKamino,
}

impl SynthesisSession {
    /// The ε actually spent at the configured δ — by the planner's
    /// construction, at most the requested budget.
    pub fn achieved_epsilon(&self) -> f64 {
        self.fitted.achieved_epsilon()
    }

    /// The privacy parameters Ψ the planner selected.
    pub fn params(&self) -> &PrivacyParams {
        &self.fitted.params
    }

    /// The schema sequence used (Algorithm 4's output).
    pub fn sequence(&self) -> &[usize] {
        &self.fitted.sequence
    }

    /// Final DC weights, aligned with the DC list passed to `fit`.
    pub fn weights(&self) -> &[f64] {
        &self.fitted.weights
    }

    /// Synthesizes `n` rows in one go.
    pub fn synthesize(&mut self, n: usize) -> Instance {
        self.fitted.sample(n)
    }

    /// Saves the complete session — model tensors, schema, DC list and
    /// weights, privacy parameters, configuration and the RNG cursor —
    /// as a versioned `.kamino` snapshot. [`Synthesizer::load`] resumes
    /// the sample stream bit-exactly where this session stopped.
    ///
    /// # Examples
    ///
    /// ```
    /// # use kamino::Synthesizer;
    /// # use kamino::datasets::adult_like;
    /// # let data = adult_like(100, 11);
    /// # let mut session = Synthesizer::builder()
    /// #     .epsilon(1.0).seed(13).train_scale(0.02).build()
    /// #     .fit(&data.schema, &data.instance, &data.dcs);
    /// let path = std::env::temp_dir()
    ///     .join(format!("kamino-doc-save-{}.kamino", std::process::id()));
    /// session.save(&path)?;
    /// assert!(path.exists());
    /// // ε was spent at fit time; the snapshot can be queried forever
    /// let restored = Synthesizer::load(&path)?;
    /// assert_eq!(restored.achieved_epsilon(), session.achieved_epsilon());
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), kamino::serve::SnapshotError>(())
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        kamino_serve::save_fitted(&self.fitted, path.as_ref())
    }

    /// Streams `total` rows as instances of at most `batch_size` rows —
    /// the service shape: bounded memory per request, each batch
    /// synthesized (sharded, when configured) on demand. Hard-DC
    /// guarantees hold within each batch; batches are mutually independent
    /// draws from the same trained model, so cross-batch pairs carry no
    /// guarantee (exactly like two separate `synthesize` calls).
    pub fn synthesize_batches(&mut self, total: usize, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            session: self,
            remaining: total,
            batch_size,
        }
    }
}

/// Iterator over synthesized row batches; see
/// [`SynthesisSession::synthesize_batches`].
pub struct Batches<'a> {
    session: &'a mut SynthesisSession,
    remaining: usize,
    batch_size: usize,
}

impl Iterator for Batches<'_> {
    type Item = Instance;

    fn next(&mut self) -> Option<Instance> {
        if self.remaining == 0 {
            return None;
        }
        let n = self.remaining.min(self.batch_size);
        self.remaining -= n;
        Some(self.session.synthesize(n))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let batches = self.remaining.div_ceil(self.batch_size);
        (batches, Some(batches))
    }
}

impl ExactSizeIterator for Batches<'_> {}
