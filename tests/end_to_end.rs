//! Cross-crate integration: the full Kamino pipeline on every corpus.

use kamino::constraints::{violation_percentage, Hardness};
use kamino::core::{run_kamino, KaminoConfig, FD_CYCLE_TOLERANCE_PCT};
use kamino::datasets::Corpus;
use kamino::dp::Budget;

fn fast_cfg(budget: Budget, seed: u64) -> KaminoConfig {
    let mut cfg = KaminoConfig::new(budget);
    cfg.train_scale = 0.05;
    cfg.embed_dim = 8;
    cfg.seed = seed;
    cfg
}

#[test]
fn every_corpus_round_trips_under_privacy() {
    for corpus in Corpus::all() {
        let d = corpus.generate(250, 3);
        let cfg = fast_cfg(Budget::new(1.0, 1e-6), 5);
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        assert_eq!(report.instance.n_rows(), 250, "{}", corpus.name());
        assert!(
            report.params.achieved_epsilon <= 1.0,
            "{}: spent {} > budget",
            corpus.name(),
            report.params.achieved_epsilon
        );
        // every synthetic cell is schema-conformant
        for i in 0..report.instance.n_rows() {
            for j in 0..d.schema.len() {
                assert!(
                    d.schema
                        .attr(j)
                        .validate(report.instance.value(i, j))
                        .is_ok(),
                    "{}: cell ({i},{j}) out of domain",
                    corpus.name()
                );
            }
        }
    }
}

#[test]
fn hard_dcs_hold_on_hard_corpora() {
    for corpus in [Corpus::Adult, Corpus::Tax, Corpus::TpcH] {
        let d = corpus.generate(300, 7);
        // moderate training: when an FD's dependent precedes its
        // determinant in the sequence (e.g. state before areacode on Tax),
        // a near-uniform model can bind all determinant values to wrong
        // groups before rare dependents appear; a trained conditional
        // avoids this (see EXPERIMENTS.md "FD-cycle residuals")
        // seed re-tuned when the BudgetPlanner replaced the hand-tuned σ
        // escalation (noise levels shifted, moving every RNG stream)
        let mut cfg = fast_cfg(Budget::new(1.0, 1e-6), 17);
        cfg.train_scale = 0.2;
        cfg.lr = 0.25;
        let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
        for dc in &d.dcs {
            if dc.hardness != Hardness::Hard {
                continue;
            }
            let pct = violation_percentage(dc, &report.instance);
            // An FD whose dependent precedes its determinant (phi_t2's
            // state before areacode) keeps a small residual at harness
            // scale even though the mechanism is correct — the documented
            // ceiling lives in one place, FD_CYCLE_TOLERANCE_PCT (see its
            // doc comment in kamino_core::sampler). All other DCs hit 0.
            assert!(
                pct < FD_CYCLE_TOLERANCE_PCT,
                "{}: hard DC {} violated at {pct}% (tolerance {FD_CYCLE_TOLERANCE_PCT}%)",
                corpus.name(),
                dc.name
            );
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let d = Corpus::Adult.generate(150, 11);
    let cfg = fast_cfg(Budget::new(1.0, 1e-6), 13);
    let a = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
    let b = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
    assert_eq!(a.instance, b.instance);
    assert_eq!(a.weights, b.weights);
    assert_eq!(a.sequence, b.sequence);
}

#[test]
fn different_seeds_differ() {
    let d = Corpus::Adult.generate(150, 11);
    let a = run_kamino(
        &d.schema,
        &d.instance,
        &d.dcs,
        &fast_cfg(Budget::new(1.0, 1e-6), 1),
    );
    let b = run_kamino(
        &d.schema,
        &d.instance,
        &d.dcs,
        &fast_cfg(Budget::new(1.0, 1e-6), 2),
    );
    assert_ne!(a.instance, b.instance, "seeds must matter");
}

#[test]
fn output_size_decoupled_from_input() {
    let d = Corpus::TpcH.generate(200, 17);
    let mut cfg = fast_cfg(Budget::new(1.0, 1e-6), 19);
    // moderate training, as in hard_dcs_hold_on_hard_corpora: at
    // train_scale 0.05 the custkey→nation FD (phi_h3) keeps a small
    // FD-cycle residual when scaled up to 450 rows
    cfg.train_scale = 0.2;
    cfg.lr = 0.25;
    cfg.output_n = Some(450);
    let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
    assert_eq!(report.instance.n_rows(), 450);
    // FDs must hold in the *larger* output too. phi_h3 (custkey→nation)
    // is the one FD whose dependent precedes its determinant in the
    // synthesis sequence, which leaves a small residual at harness scale
    // (same mechanism and FD_CYCLE_TOLERANCE_PCT ceiling as
    // hard_dcs_hold_on_hard_corpora); every other DC must be exactly
    // clean.
    for dc in &d.dcs {
        let pct = violation_percentage(dc, &report.instance);
        if dc.name == "phi_h3" {
            assert!(
                pct < FD_CYCLE_TOLERANCE_PCT,
                "{} violated at {pct}% (tolerance {FD_CYCLE_TOLERANCE_PCT}%)",
                dc.name
            );
        } else {
            assert_eq!(pct, 0.0, "{} violated at {pct}%", dc.name);
        }
    }
}
