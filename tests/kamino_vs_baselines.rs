//! Cross-crate integration: the paper's headline comparison. Kamino must
//! preserve constraints that every i.i.d. baseline breaks, without giving
//! up marginal quality relative to the noisiest baselines.

use kamino::baselines::paper_baselines;
use kamino::constraints::violation_percentage;
use kamino::core::{run_kamino, KaminoConfig};
use kamino::datasets::Corpus;
use kamino::dp::Budget;
use kamino::eval::marginals::{summarize, tvd_all_singles};

#[test]
fn kamino_preserves_what_baselines_break() {
    let d = Corpus::Adult.generate(300, 1);
    let budget = Budget::new(1.0, 1e-6);

    let mut cfg = KaminoConfig::new(budget);
    cfg.train_scale = 0.05;
    cfg.embed_dim = 8;
    cfg.seed = 3;
    let kamino_out = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg).instance;
    let kamino_viol: f64 = d
        .dcs
        .iter()
        .map(|dc| violation_percentage(dc, &kamino_out))
        .sum();
    assert!(
        kamino_viol < 0.5,
        "Kamino violated hard DCs: {kamino_viol}%"
    );

    for baseline in paper_baselines() {
        let out = baseline.synthesize(&d.schema, &d.instance, budget, 300, 3);
        let viol: f64 = d.dcs.iter().map(|dc| violation_percentage(dc, &out)).sum();
        assert!(
            viol > kamino_viol + 1.0,
            "{} at {viol}% should violate far more than Kamino's {kamino_viol}%",
            baseline.name()
        );
    }
}

#[test]
fn kamino_marginals_competitive_non_private() {
    // with privacy off, Kamino's 1-way marginals must be close to the
    // truth (the sampler draws the first attribute from the exact
    // histogram and conditionals from a converged model)
    let d = Corpus::Adult.generate(400, 5);
    let mut cfg = KaminoConfig::new(Budget::non_private());
    cfg.train_scale = 0.3;
    cfg.lr = 0.25;
    cfg.seed = 7;
    let out = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg).instance;
    let (mean_tvd, _, max_tvd) = summarize(&tvd_all_singles(&d.schema, &d.instance, &out));
    assert!(mean_tvd < 0.25, "non-private 1-way TVD mean {mean_tvd}");
    assert!(max_tvd < 0.6, "non-private 1-way TVD max {max_tvd}");
}

#[test]
fn all_baselines_produce_valid_instances_on_all_corpora() {
    let budget = Budget::new(1.0, 1e-6);
    for corpus in Corpus::all() {
        let d = corpus.generate(200, 9);
        for baseline in paper_baselines() {
            let out = baseline.synthesize(&d.schema, &d.instance, budget, 120, 11);
            assert_eq!(
                out.n_rows(),
                120,
                "{} on {}",
                baseline.name(),
                corpus.name()
            );
            for i in 0..out.n_rows() {
                for j in 0..d.schema.len() {
                    assert!(
                        d.schema.attr(j).validate(out.value(i, j)).is_ok(),
                        "{} on {}: invalid cell",
                        baseline.name(),
                        corpus.name()
                    );
                }
            }
        }
    }
}
