//! Determinism guard: observability is strictly off the contract.
//!
//! Fitting and sampling with tracing enabled must produce artifacts —
//! the `.kamino` snapshot bytes and the synthesized rows — that are
//! byte-identical to a run with tracing disabled. Spans, metrics, and
//! the DP budget ledger may read the wall clock, but nothing they do is
//! allowed to perturb the sample stream or leak a timestamp into an
//! artifact.

use kamino::core::{fit_kamino, KaminoConfig};
use kamino::datasets::adult_like;
use kamino::dp::Budget;
use kamino::obs::{Event, ObsHandle};
use kamino::serve::{decode_fitted, encode_fitted};

/// Fit, snapshot, restore, and sample under the given handle.
///
/// Phase timings are zeroed before encoding: they are the one
/// deliberately wall-clock-dependent snapshot section (surfaced by
/// `GET /models/{id}` and `--timings`), so they vary run to run with or
/// without tracing. Everything else — model weights, RNG cursor,
/// schema, DC weights — must be bit-stable.
fn artifacts(obs: ObsHandle) -> (Vec<u8>, String) {
    let data = adult_like(120, 5);
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.seed = 23;
    cfg.train_scale = 0.05;
    cfg.obs = obs;
    let mut fitted = fit_kamino(&data.schema, &data.instance, &data.dcs, &cfg);
    fitted.timings = Default::default();
    let snapshot = encode_fitted(&fitted);
    let mut session = decode_fitted(&snapshot).expect("snapshot round-trip");
    let inst = session.sample(60);
    let header = kamino::data::csv::header_line(session.schema()).expect("csv header");
    let rows = kamino::data::csv::rows_text(session.schema(), &inst).expect("csv rows");
    (snapshot, format!("{header}{rows}"))
}

#[test]
fn tracing_enabled_and_disabled_yield_byte_identical_artifacts() {
    let (snap_off, csv_off) = artifacts(ObsHandle::disabled());
    let (snap_on, csv_on) = artifacts(ObsHandle::enabled());
    assert_eq!(
        snap_off, snap_on,
        ".kamino snapshot bytes must not depend on tracing"
    );
    assert_eq!(csv_off, csv_on, "sampled rows must not depend on tracing");
}

#[test]
fn the_enabled_run_recorded_spans_and_the_budget_ledger() {
    let obs = ObsHandle::enabled();
    let _ = artifacts(obs.clone());

    let spans = obs.spans();
    for name in ["fit", "fit.sequencing", "fit.training", "fit.dc_weights"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "missing span {name:?} in {:?}",
            spans.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
        );
    }

    let events = obs.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::BudgetCalibration { .. })),
        "planner calibration never hit the ledger"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::BudgetSpend { .. })),
        "no budget spend recorded"
    );

    // the exporters agree the data is there
    assert!(obs.render_prometheus().contains("kamino_dp_plans_total"));
    assert!(obs.chrome_trace_json().contains("fit.training"));
}
