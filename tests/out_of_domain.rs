//! Regression test: out-of-domain categorical codes in a *synthetic*
//! instance must flow through every metric path with one shared semantic
//! — fold into the last bin and count it (`histogram_with_clamped`) —
//! instead of eval clamping silently while the baselines' discretized
//! view panicked in debug builds.

use kamino::baselines::discretize::Discretized;
use kamino::constraints::{parse_dc, Hardness};
use kamino::data::stats::histogram_with_clamped;
use kamino::data::{Attribute, Instance, Schema, Value};
use kamino::eval::violations::violation_table;
use kamino::eval::{marginal_tvd, tvd_all_pairs, tvd_all_singles};

/// Two categorical attributes plus a numeric one; the synthetic copy gets
/// one categorical cell poked past the declared domain (an encoding bug a
/// buggy synthesizer could produce — bypasses row validation).
fn corpus_with_out_of_domain_cell() -> (Schema, Instance, Instance) {
    let schema = Schema::new(vec![
        Attribute::categorical_indexed("a", 3).unwrap(),
        Attribute::categorical_indexed("b", 2).unwrap(),
        Attribute::numeric("x", 0.0, 10.0, 5).unwrap(),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..20)
        .map(|i| {
            vec![
                Value::Cat((i % 3) as u32),
                Value::Cat((i % 2) as u32),
                Value::Num((i % 10) as f64),
            ]
        })
        .collect();
    let truth = Instance::from_rows(&schema, &rows).unwrap();
    let mut synth = truth.clone();
    synth.set(4, 0, Value::Cat(7)); // out of domain: card is 3
    (schema, truth, synth)
}

#[test]
fn histogram_and_discretized_agree_on_out_of_domain_codes() {
    let (schema, _, synth) = corpus_with_out_of_domain_cell();

    // the reference semantics: fold into the last bin, count one clamp
    let h = histogram_with_clamped(&schema, &synth, 0);
    assert_eq!(h.clamped, 1);
    assert_eq!(h.counts.iter().sum::<f64>(), 20.0, "no row dropped");

    // the baselines' discretized view reports the same clamp count and
    // produces the same folded marginal — no debug panic
    let disc = Discretized::from_instance(&schema, &synth);
    assert_eq!(disc.clamped(), 1);
    assert_eq!(disc.marginal(0), h.counts);

    // a clean instance reports zero clamps through both paths
    let disc_clean = Discretized::from_instance(
        &schema,
        &Instance::from_rows(
            &schema,
            &[vec![Value::Cat(2), Value::Cat(0), Value::Num(1.0)]],
        )
        .unwrap(),
    );
    assert_eq!(disc_clean.clamped(), 0);
}

#[test]
fn eval_metrics_fold_out_of_domain_codes_without_panicking() {
    let (schema, truth, synth) = corpus_with_out_of_domain_cell();

    // Metric III: marginals fold the bad cell into the last bin. Exactly
    // one of 20 rows moved between bins of attribute 0, so the 1-way TVD
    // is 1/20 — the folded (not dropped, not panicked) semantics.
    let tvd = marginal_tvd(&schema, &truth, &synth, &[0]);
    assert!(
        (tvd - 0.05).abs() < 1e-12,
        "expected folded TVD 0.05, got {tvd}"
    );
    assert_eq!(tvd_all_singles(&schema, &truth, &synth).len(), 3);
    assert_eq!(tvd_all_pairs(&schema, &truth, &synth).len(), 3);

    // Metric I: the violation engine compares codes as opaque values, so
    // the table still computes over the malformed instance
    let dc = parse_dc(
        &schema,
        "fd",
        "!(t1.a == t2.a & t1.b != t2.b)",
        Hardness::Soft,
    )
    .unwrap();
    let table = violation_table(&[dc], &synth);
    assert_eq!(table.len(), 1);
    assert!(table[0].1.is_finite());
}
