//! Property-based tests on the core invariants, spanning crates.
//!
//! * Eqn. (3): the incremental counters' chain rule matches full-instance
//!   counting for random instances and random DC shapes.
//! * The engine's FD/order fast paths agree with the naive pair scan.
//! * CSV round-trips arbitrary instances.
//! * Quantizer bins stay within range and sample back into themselves.
//! * The RDP accountant is monotone in its inputs.

use kamino::constraints::{
    count_violating_pairs, parse_dc, CandidateRow, DcCounter, DenialConstraint, Hardness,
};
use kamino::data::{csv, Attribute, Instance, Quantizer, Schema, Value};
use kamino::dp::{sgm_rdp, RdpAccountant};
use proptest::prelude::*;

fn small_schema() -> Schema {
    Schema::new(vec![
        Attribute::categorical_indexed("a", 4).unwrap(),
        Attribute::categorical_indexed("b", 3).unwrap(),
        Attribute::integer("x", 0.0, 9.0, 10).unwrap(),
        Attribute::numeric("y", 0.0, 1.0, 4).unwrap(),
    ])
    .unwrap()
}

prop_compose! {
    fn arb_row()(a in 0u32..4, b in 0u32..3, x in 0i32..10, y in 0.0f64..1.0) -> Vec<Value> {
        vec![Value::Cat(a), Value::Cat(b), Value::Num(x as f64), Value::Num(y)]
    }
}

prop_compose! {
    fn arb_instance(max_rows: usize)(rows in prop::collection::vec(arb_row(), 2..max_rows)) -> Instance {
        Instance::from_rows(&small_schema(), &rows).unwrap()
    }
}

/// A pool of DC shapes covering FD, grouped order, non-strict order, and
/// unary constraints.
fn dc_pool() -> Vec<DenialConstraint> {
    let s = small_schema();
    [
        "!(t1.a == t2.a & t1.b != t2.b)",
        "!(t1.a == t2.a & t1.x != t2.x)",
        "!(t1.x > t2.x & t1.y < t2.y)",
        "!(t1.a == t2.a & t1.x > t2.x & t1.y < t2.y)",
        "!(t1.x >= t2.x & t1.y <= t2.y)",
        "!(t1.x > 7 & t1.y < 0.3)",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| parse_dc(&s, &format!("dc{i}"), text, Hardness::Soft).unwrap())
    .collect()
}

/// Naive reference: unordered pairs violating in either orientation.
fn naive_pairs(dc: &DenialConstraint, inst: &Instance) -> u64 {
    let n = inst.n_rows();
    let mut count = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if dc.violated_by_pair(&|a| inst.value(i, a), &|a| inst.value(j, a)) {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast-path counting equals the naive scan for every DC shape.
    #[test]
    fn engine_fast_paths_match_naive(inst in arb_instance(40)) {
        for dc in dc_pool().iter().filter(|dc| dc.is_binary()) {
            prop_assert_eq!(
                count_violating_pairs(dc, &inst),
                naive_pairs(dc, &inst),
                "{}", dc.name
            );
        }
    }

    /// Eqn. (3): Σ_i |V(φ, t_i | D_:i)| == |V(φ, D)| via the incremental
    /// counters, for every binary DC shape.
    #[test]
    fn incremental_chain_rule(inst in arb_instance(30)) {
        for dc in dc_pool().iter().filter(|dc| dc.is_binary()) {
            let target = *dc.attrs().iter().next_back().unwrap();
            let mut counter = DcCounter::build(dc);
            let mut sum = 0;
            for i in 0..inst.n_rows() {
                let cand = CandidateRow::committed(&inst, i, target);
                sum += counter.count_new(&cand);
                counter.insert(&cand);
            }
            prop_assert_eq!(sum, count_violating_pairs(dc, &inst), "{}", dc.name);
        }
    }

    /// Removing and re-inserting any row leaves counter answers unchanged.
    #[test]
    fn counter_remove_insert_is_identity(inst in arb_instance(25), probe in arb_row()) {
        let s = small_schema();
        let mut with_probe_rows: Vec<Vec<Value>> =
            (0..inst.n_rows()).map(|i| inst.row(i)).collect();
        with_probe_rows.push(probe);
        let ext = Instance::from_rows(&s, &with_probe_rows).unwrap();
        let probe_row = ext.n_rows() - 1;
        for dc in dc_pool().iter().filter(|dc| dc.is_binary()) {
            let target = *dc.attrs().iter().next_back().unwrap();
            let mut counter = DcCounter::build(dc);
            for i in 0..inst.n_rows() {
                counter.insert(&CandidateRow::committed(&ext, i, target));
            }
            let cand = CandidateRow::committed(&ext, probe_row, target);
            let before = counter.count_new(&cand);
            let victim = CandidateRow::committed(&ext, 0, target);
            counter.remove(&victim);
            counter.insert(&victim);
            prop_assert_eq!(before, counter.count_new(&cand), "{}", dc.name);
        }
    }

    /// CSV round-trips arbitrary instances exactly for categorical codes
    /// and within float-printing fidelity for numerics.
    #[test]
    fn csv_roundtrip(inst in arb_instance(30)) {
        let s = small_schema();
        let mut buf = Vec::new();
        csv::write_csv(&s, &inst, &mut buf).unwrap();
        let back = csv::read_csv(&s, buf.as_slice()).unwrap();
        prop_assert_eq!(back.n_rows(), inst.n_rows());
        for i in 0..inst.n_rows() {
            for j in 0..s.len() {
                match (inst.value(i, j), back.value(i, j)) {
                    (Value::Cat(a), Value::Cat(b)) => prop_assert_eq!(a, b),
                    (Value::Num(a), Value::Num(b)) => prop_assert!((a - b).abs() < 1e-9),
                    _ => prop_assert!(false, "kind changed through CSV"),
                }
            }
        }
    }

    /// Quantizer: bins are in range, and sampling inside a bin lands back
    /// in that bin.
    #[test]
    fn quantizer_bin_roundtrip(x in -5.0f64..15.0, bin in 0usize..10, seed in 0u64..1000) {
        use rand::SeedableRng;
        let attr = Attribute::numeric("q", 0.0, 10.0, 10).unwrap();
        let q = Quantizer::for_attr(&attr);
        prop_assert!(q.bin(Value::Num(x)) < 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = q.sample_in_bin(bin, &mut rng);
        prop_assert_eq!(q.bin(v), bin);
    }

    /// SGM RDP is monotone: more sampling or less noise never costs less.
    #[test]
    fn rdp_monotonicity(q in 0.001f64..0.5, sigma in 0.8f64..4.0) {
        let base = sgm_rdp(8, sigma, q);
        prop_assert!(sgm_rdp(8, sigma, (q * 1.5).min(1.0)) >= base - 1e-12);
        prop_assert!(sgm_rdp(8, sigma * 1.5, q) <= base + 1e-12);
        // composition is additive
        let mut acc = RdpAccountant::new();
        acc.add_sgm(sigma, q, 3);
        let mut acc2 = RdpAccountant::new();
        for _ in 0..3 { acc2.add_sgm(sigma, q, 1); }
        prop_assert!((acc.epsilon(1e-6) - acc2.epsilon(1e-6)).abs() < 1e-9);
    }
}
