//! Property tests on the user-facing surfaces: the DC parser must never
//! panic on arbitrary input, and the end-to-end pipeline must produce
//! schema-conformant, budget-respecting output across randomized
//! configurations.

use kamino::constraints::{parse_dc, violation_percentage, Hardness};
use kamino::core::{run_kamino, KaminoConfig};
use kamino::data::{Attribute, Instance, Schema, Value};
use kamino::dp::Budget;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::categorical_indexed("a", 3).unwrap(),
        Attribute::categorical_indexed("b", 4).unwrap(),
        Attribute::integer("x", 0.0, 9.0, 10).unwrap(),
        Attribute::numeric("y", 0.0, 1.0, 4).unwrap(),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser returns Ok or Err on arbitrary strings — never panics.
    #[test]
    fn parser_never_panics(text in ".{0,60}") {
        let s = schema();
        let _ = parse_dc(&s, "fuzz", &text, Hardness::Soft);
    }

    /// Near-miss DC syntax (structured fuzz around the grammar) also never
    /// panics and either parses or errors cleanly.
    #[test]
    fn parser_structured_fuzz(
        t1 in prop::sample::select(vec!["t1", "t2", "tq", ""]),
        attr in prop::sample::select(vec!["a", "b", "x", "zzz", ""]),
        op in prop::sample::select(vec!["==", "!=", "<", ">=", "=", "<>", ""]),
        rhs in prop::sample::select(vec!["t2.b", "3", "'v1'", "'nope'", "t1.y", ""]),
    ) {
        let s = schema();
        let text = format!("!({t1}.{attr} {op} {rhs})");
        let _ = parse_dc(&s, "fuzz", &text, Hardness::Hard);
    }
}

prop_compose! {
    fn arb_row()(a in 0u32..3, b in 0u32..4, x in 0i32..10, y in 0.0f64..1.0) -> Vec<Value> {
        vec![Value::Cat(a), Value::Cat(b), Value::Num(x as f64), Value::Num(y)]
    }
}

proptest! {
    // end-to-end runs are costly; a handful of randomized cases suffices
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random instances, seeds, budgets and ablation switches, the
    /// pipeline yields a schema-conformant instance within budget, and the
    /// hard FD holds whenever constraint-aware sampling is on.
    #[test]
    fn pipeline_conformance(
        rows in prop::collection::vec(arb_row(), 30..60),
        seed in 0u64..1000,
        eps in prop::sample::select(vec![0.5, 1.0, f64::INFINITY]),
        aware in any::<bool>(),
        mcmc in prop::sample::select(vec![0.0, 0.5]),
    ) {
        let s = schema();
        // plant the FD a→b so the constraint is satisfiable
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|mut r| {
                let Value::Cat(a) = r[0] else { unreachable!() };
                r[1] = Value::Cat(a % 4);
                r
            })
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let dc = parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap();

        let budget = if eps.is_infinite() { Budget::non_private() } else { Budget::new(eps, 1e-6) };
        let mut cfg = KaminoConfig::new(budget);
        cfg.seed = seed;
        cfg.train_scale = 0.05;
        cfg.embed_dim = 4;
        cfg.constraint_aware_sampling = aware;
        cfg.mcmc_ratio = mcmc;
        let report = run_kamino(&s, &inst, std::slice::from_ref(&dc), &cfg);

        prop_assert_eq!(report.instance.n_rows(), inst.n_rows());
        prop_assert!(report.params.achieved_epsilon <= budget.epsilon);
        for i in 0..report.instance.n_rows() {
            for j in 0..s.len() {
                prop_assert!(s.attr(j).validate(report.instance.value(i, j)).is_ok());
            }
        }
        if aware {
            prop_assert_eq!(violation_percentage(&dc, &report.instance), 0.0);
        }
    }

    /// Sharded synthesis (shards ∈ {2, 4}) preserves the hard-DC
    /// guarantees across randomized instances and seeds. (`shards: 1` ==
    /// sequential-sampler bit-identity is pinned by the golden test in
    /// `kamino_core::sampler` — comparing two shards-1 runs here would
    /// only re-prove determinism.)
    #[test]
    fn sharded_pipeline_preserves_hard_dcs(
        rows in prop::collection::vec(arb_row(), 40..70),
        seed in 0u64..1000,
        shards in prop::sample::select(vec![2usize, 4]),
    ) {
        let s = schema();
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|mut r| {
                let Value::Cat(a) = r[0] else { unreachable!() };
                r[1] = Value::Cat(a % 4);
                r
            })
            .collect();
        let inst = Instance::from_rows(&s, &rows).unwrap();
        let dcs = vec![
            parse_dc(&s, "fd", "!(t1.a == t2.a & t1.b != t2.b)", Hardness::Hard).unwrap(),
            parse_dc(&s, "ord", "!(t1.x > t2.x & t1.y < t2.y)", Hardness::Hard).unwrap(),
        ];

        let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
        cfg.seed = seed;
        cfg.train_scale = 0.05;
        cfg.embed_dim = 4;
        cfg.shards = shards;
        let report = run_kamino(&s, &inst, &dcs, &cfg);
        prop_assert_eq!(report.instance.n_rows(), inst.n_rows());
        for dc in &dcs {
            prop_assert_eq!(
                violation_percentage(dc, &report.instance),
                0.0,
                "{} violated at {} shards",
                &dc.name, shards
            );
        }
    }
}
