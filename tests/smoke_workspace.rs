//! Workspace smoke test: the full pipeline builds, runs under privacy,
//! holds hard DCs, and the parallel scoring substrate is bit-identical to
//! the serial path for a fixed seed.
//!
//! Run with `RAYON_NUM_THREADS=4` (as CI does) to exercise the parity
//! assertion with real thread fan-out; on a single-core host the parallel
//! path degenerates to serial and the assertions still hold.

use kamino::datasets::adult_like;
use kamino::prelude::*;

fn smoke_cfg(seed: u64) -> KaminoConfig {
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.train_scale = 0.05;
    cfg.embed_dim = 8;
    cfg.seed = seed;
    cfg
}

#[test]
fn run_kamino_on_adult_holds_hard_dcs() {
    let d = adult_like(200, 21);
    let cfg = smoke_cfg(23);
    let report = run_kamino(&d.schema, &d.instance, &d.dcs, &cfg);
    assert_eq!(report.instance.n_rows(), 200);
    assert!(report.params.achieved_epsilon <= 1.0, "budget exceeded");
    for dc in &d.dcs {
        assert_eq!(
            violation_percentage(dc, &report.instance),
            0.0,
            "hard DC {} violated",
            dc.name
        );
    }
}

#[test]
fn parallel_and_serial_substrates_are_bit_identical() {
    // Same seed, same data; only the parallel switch differs. Candidate
    // scoring writes penalties by index and DP-SGD merges microbatch sums
    // in fixed order, so the outputs must match exactly — not just
    // statistically.
    let d = adult_like(200, 25);
    let run = |parallel: bool| {
        let mut cfg = smoke_cfg(27);
        cfg.parallel_substrate = parallel;
        run_kamino(&d.schema, &d.instance, &d.dcs, &cfg)
    };
    let par = run(true);
    let ser = run(false);
    assert_eq!(par.instance, ser.instance, "sampled instances diverged");
    assert_eq!(par.weights, ser.weights);
    assert_eq!(par.sequence, ser.sequence);
}
