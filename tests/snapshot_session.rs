//! Session durability through the facade API: save → load → synthesize
//! must produce a byte-identical row stream to an uninterrupted session,
//! and hard-DC guarantees must survive the round trip.

use kamino::constraints::violation_percentage;
use kamino::datasets::Corpus;
use kamino::serve::SnapshotError;
use kamino::Synthesizer;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kamino-session-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn saved_session_resumes_byte_identical_stream() {
    let d = Corpus::Adult.generate(200, 21);
    let mut live = Synthesizer::builder()
        .epsilon(1.0)
        .delta(1e-6)
        .seed(23)
        .train_scale(0.05)
        .build()
        .fit(&d.schema, &d.instance, &d.dcs);

    // advance the stream: two batches consumed before the snapshot
    let consumed: Vec<_> = live.synthesize_batches(120, 60).collect();
    assert_eq!(consumed.len(), 2);

    let path = tmp_path("resume.kamino");
    live.save(&path).unwrap();
    let mut loaded = Synthesizer::load(&path).unwrap();

    assert_eq!(loaded.achieved_epsilon(), live.achieved_epsilon());
    assert_eq!(loaded.sequence(), live.sequence());
    assert_eq!(loaded.weights(), live.weights());

    // the continuation streams are byte-identical, batch boundaries and all
    let a: Vec<_> = live.synthesize_batches(150, 40).collect();
    let b: Vec<_> = loaded.synthesize_batches(150, 40).collect();
    assert_eq!(a, b);

    // hard DCs hold in post-restore batches exactly as in live ones
    for batch in &b {
        for dc in &d.dcs {
            assert_eq!(
                violation_percentage(dc, batch),
                0.0,
                "hard DC {} violated after restore",
                dc.name
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sharded_sessions_snapshot_too() {
    let d = Corpus::Adult.generate(150, 31);
    let mut live = Synthesizer::builder()
        .epsilon(1.0)
        .shards(3)
        .seed(5)
        .train_scale(0.04)
        .build()
        .fit(&d.schema, &d.instance, &d.dcs);
    let _ = live.synthesize(70);
    let path = tmp_path("sharded.kamino");
    live.save(&path).unwrap();
    let mut loaded = Synthesizer::load(&path).unwrap();
    assert_eq!(live.synthesize(90), loaded.synthesize(90));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn loading_garbage_fails_cleanly() {
    let path = tmp_path("garbage.kamino");
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    match Synthesizer::load(&path) {
        Err(SnapshotError::BadMagic) => {}
        Err(other) => panic!("expected BadMagic, got {other}"),
        Ok(_) => panic!("garbage file loaded"),
    }
    std::fs::remove_file(&path).unwrap();
    match Synthesizer::load(tmp_path("does-not-exist.kamino")) {
        Err(SnapshotError::Io(_)) => {}
        Err(other) => panic!("expected Io, got {other}"),
        Ok(_) => panic!("missing file loaded"),
    }
}
