//! The `Synthesizer` session API end to end: planner-derived budgets
//! verified through the RDP accountant, batch streaming, and the sharded
//! engine.

use kamino::constraints::{count_violating_pairs, Hardness};
use kamino::core::train::{count_marginal_releases, count_sgd_models};
use kamino::core::{run_kamino, KaminoConfig};
use kamino::datasets::adult_like;
use kamino::dp::{composed_epsilon, Budget, BudgetPlan, RunShape};
use kamino::Synthesizer;

fn builder() -> kamino::SynthesizerBuilder {
    Synthesizer::builder()
        .epsilon(1.0)
        .delta(1e-6)
        .seed(3)
        .train_scale(0.05)
        .configure(|c| c.embed_dim = 8)
}

/// Acceptance criterion: an end-to-end run through `Synthesizer` with a
/// planner-derived budget satisfies `RdpAccountant::epsilon(δ) ≤ ε` —
/// re-derived here from the session's Ψ and the run shape, not trusted
/// from `achieved_epsilon`.
#[test]
fn planner_budget_round_trips_through_the_accountant() {
    let data = adult_like(300, 1);
    let session = builder()
        .build()
        .fit(&data.schema, &data.instance, &data.dcs);
    let p = session.params();
    assert!(!p.non_private);

    // rebuild Theorem 1's shape exactly as the pipeline planned it
    let shape = RunShape {
        n: data.instance.n_rows(),
        histogram_releases: count_marginal_releases(&data.schema, session.sequence(), 256) as u64,
        sgd_steps: (p.t * count_sgd_models(&data.schema, session.sequence(), 256)) as u64,
        batch: p.b,
        weight_sample: if p.learn_weights { p.l_w } else { 0 },
    };
    let plan = BudgetPlan {
        sigma_g: p.sigma_g,
        sigma_d: p.sigma_d,
        sigma_w: p.sigma_w,
        achieved_epsilon: p.achieved_epsilon,
    };
    let eps = composed_epsilon(&shape, &plan, 1e-6);
    assert!(
        eps <= 1.0 + 1e-9,
        "composed epsilon {eps} exceeds the budget"
    );
    assert!(
        (eps - session.achieved_epsilon()).abs() < 1e-9,
        "session reports {} but the accountant derives {eps}",
        session.achieved_epsilon()
    );
}

/// A `shards: 1` session must reproduce `run_kamino` bit-for-bit: the
/// facade is a re-plumbing of the same pipeline, not a second code path.
#[test]
fn session_with_one_shard_matches_run_kamino_exactly() {
    let data = adult_like(200, 5);
    let mut cfg = KaminoConfig::new(Budget::new(1.0, 1e-6));
    cfg.seed = 11;
    cfg.train_scale = 0.05;
    cfg.embed_dim = 8;
    cfg.shards = 1;
    let report = run_kamino(&data.schema, &data.instance, &data.dcs, &cfg);

    let mut session = Synthesizer::builder()
        .epsilon(1.0)
        .delta(1e-6)
        .seed(11)
        .shards(1)
        .train_scale(0.05)
        .configure(|c| c.embed_dim = 8)
        .build()
        .fit(&data.schema, &data.instance, &data.dcs);
    let inst = session.synthesize(200);
    assert_eq!(
        inst, report.instance,
        "facade output diverged from run_kamino"
    );
}

#[test]
fn batches_stream_the_requested_rows() {
    let data = adult_like(200, 7);
    let mut session = builder()
        .build()
        .fit(&data.schema, &data.instance, &data.dcs);
    let batches: Vec<_> = session.synthesize_batches(130, 50).collect();
    assert_eq!(
        batches.iter().map(|b| b.n_rows()).collect::<Vec<_>>(),
        vec![50, 50, 30]
    );
    // every batch upholds the hard DCs on its own
    for (i, b) in batches.iter().enumerate() {
        for dc in &data.dcs {
            if dc.hardness == Hardness::Hard {
                assert_eq!(
                    count_violating_pairs(dc, b),
                    0,
                    "batch {i} violates {}",
                    dc.name
                );
            }
        }
    }
    // exact-size iterator contract
    let mut it = session.synthesize_batches(130, 50);
    assert_eq!(it.len(), 3);
    it.next();
    assert_eq!(it.len(), 2);
}

#[test]
fn batch_streams_replay_deterministically() {
    let data = adult_like(150, 9);
    let run = |(): ()| -> Vec<kamino::data::Instance> {
        let mut session = builder()
            .build()
            .fit(&data.schema, &data.instance, &data.dcs);
        session.synthesize_batches(90, 40).collect()
    };
    let a = run(());
    let b = run(());
    assert_eq!(a, b, "equal-seeded sessions must replay identically");
}

#[test]
fn sharded_session_preserves_hard_dcs() {
    let data = adult_like(250, 13);
    for shards in [2, 4] {
        let mut session =
            builder()
                .shards(shards)
                .build()
                .fit(&data.schema, &data.instance, &data.dcs);
        let inst = session.synthesize(250);
        assert_eq!(inst.n_rows(), 250);
        for dc in &data.dcs {
            if dc.hardness == Hardness::Hard {
                assert_eq!(
                    count_violating_pairs(dc, &inst),
                    0,
                    "{shards}-shard session violates {}",
                    dc.name
                );
            }
        }
    }
}

#[test]
fn non_private_session_skips_noise() {
    let data = adult_like(150, 15);
    let session = Synthesizer::builder()
        .non_private()
        .seed(1)
        .train_scale(0.05)
        .configure(|c| c.embed_dim = 8)
        .build()
        .fit(&data.schema, &data.instance, &data.dcs);
    assert!(session.params().non_private);
    assert!(session.achieved_epsilon().is_infinite());
}
