//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal harness with the same surface the benches use:
//! [`Criterion::benchmark_group`], `group.sample_size(n)`,
//! `group.bench_function(name, |b| b.iter(f))`, `group.finish()`,
//! [`Criterion::bench_function`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros for `harness = false` targets.
//!
//! Methodology (simplified from upstream): each benchmark is warmed up for
//! a fixed wall-clock slice, then timed over `sample_size` samples whose
//! iteration count targets ~`measurement_time / sample_size` each; the
//! report prints the min / median / mean per-iteration time. There are no
//! statistical regressions, plots, or saved baselines — this harness
//! exists so `cargo bench` runs and prints honest wall-clock numbers, not
//! to replace criterion's analysis.
//!
//! Environment knobs: `KAMINO_BENCH_FAST=1` shrinks warm-up and
//! measurement windows ~10× (used by CI's smoke run).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn fast_mode() -> bool {
    std::env::var("KAMINO_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Per-benchmark timing state handed to the closure of `bench_function`.
pub struct Bencher {
    /// Total time and iterations accumulated by `iter` calls.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Times `f`, running warm-up plus `sample_count` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the window closes, measuring mean cost to
        // choose the per-sample iteration count.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_sample = (self.warm_up.as_secs_f64() / self.sample_count as f64).max(1e-4);
        self.iters_per_sample = ((target_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<50} min {:>12}  med {:>12}  mean {:>12}  ({} samples × {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement window (accepted for source
    /// compatibility; the shim derives its window from warm-up instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let warm_up = if fast_mode() {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300)
        };
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
            warm_up,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.as_ref()));
        self
    }

    /// Ends the group (upstream writes reports here; the shim prints as it
    /// goes, so this only prints a trailing newline).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            criterion: self,
        }
    }

    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let name_owned = name.as_ref().to_string();
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 20,
            criterion: self,
        };
        g.name = name_owned;
        g.bench_function("", f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("KAMINO_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
