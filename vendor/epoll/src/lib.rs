//! Minimal safe bindings over the Linux `epoll` readiness API, vendored
//! in the style of the other offline stand-ins (see `vendor/README.md`).
//!
//! This crate is the **only** place in the workspace that talks to the
//! kernel directly: `kamino-serve` keeps its `#![forbid(unsafe_code)]`
//! header and consumes the safe [`Poller`]/[`Waker`] surface exposed
//! here. The API subset is exactly what a single-threaded, level-
//! triggered event loop needs:
//!
//! * [`Poller`] — `epoll_create1` / `epoll_ctl` / `epoll_wait` behind
//!   add/modify/delete/wait methods keyed by caller-chosen `u64` tokens.
//! * [`Waker`] — an `eventfd` registered with the poller so worker
//!   threads can interrupt a blocked [`Poller::wait`] from outside.
//! * [`Interest`] — readable/writable subscription flags. All
//!   registrations are level-triggered: readiness is re-reported until
//!   the condition is drained, which keeps state machines simple.
//!
//! Non-Linux targets compile but every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; the serving event loop is a
//! Linux deployment feature and tests gate on it.

#![warn(missing_docs)]

/// What readiness a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Subscribe to readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Subscribe to writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Subscribe to both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending hangup to observe).
    pub readable: bool,
    /// The fd accepts writes.
    pub writable: bool,
    /// Error or hangup condition (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`);
    /// the connection should be torn down after draining.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};

    #[allow(non_camel_case_types)]
    type c_int = i32;
    #[allow(non_camel_case_types)]
    type c_uint = u32;

    // the kernel packs epoll_event on x86-64 (and only there)
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An epoll instance plus a scratch event buffer.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates a fresh epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` under `token` (level-triggered).
        pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), mask(interest), token)
        }

        /// Re-arms an existing registration with a new interest set.
        pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), mask(interest), token)
        }

        /// Removes `fd` from the poller.
        pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
            // the event argument is ignored for DEL on modern kernels but
            // must be non-null on pre-2.6.9 ones; pass a real struct
            self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
        }

        /// Blocks up to `timeout_ms` (`-1` = forever, `0` = poll) and
        /// fills `out` with the ready registrations. `EINTR` retries.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let n = loop {
                let r = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if r >= 0 {
                    break r as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for i in 0..n {
                // copy out of the (possibly packed) kernel struct before
                // touching fields
                let ev: EpollEvent = self.buf[i];
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    /// An eventfd usable to interrupt `Poller::wait` from other threads.
    pub struct Waker {
        fd: RawFd,
    }

    // an eventfd write/read is an atomic kernel operation
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// Creates a nonblocking eventfd.
        pub fn new() -> io::Result<Waker> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Waker { fd })
        }

        /// Signals the poller; safe from any thread, never blocks.
        pub fn wake(&self) {
            let one: u64 = 1;
            // a full counter (EAGAIN) already guarantees a pending wakeup
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Clears a pending wakeup so `wait` stops reporting it.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // nonblocking: EAGAIN means already drained
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl AsRawFd for Waker {
        fn as_raw_fd(&self) -> RawFd {
            self.fd
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the kamino epoll shim only supports Linux",
        ))
    }

    /// Stub poller for non-Linux targets: compiles, errors at runtime.
    pub struct Poller;

    impl Poller {
        /// Always fails off-Linux.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        /// Always fails off-Linux.
        pub fn add<T>(&self, _fd: &T, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off-Linux.
        pub fn modify<T>(&self, _fd: &T, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off-Linux.
        pub fn delete<T>(&self, _fd: &T) -> io::Result<()> {
            unsupported()
        }
        /// Always fails off-Linux.
        pub fn wait(&mut self, _timeout_ms: i32, _out: &mut Vec<Event>) -> io::Result<()> {
            unsupported()
        }
    }

    /// Stub waker for non-Linux targets.
    pub struct Waker;

    impl Waker {
        /// Always fails off-Linux.
        pub fn new() -> io::Result<Waker> {
            unsupported()
        }
        /// No-op off-Linux.
        pub fn wake(&self) {}
        /// No-op off-Linux.
        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_accept_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&listener, 7, Interest::READABLE).unwrap();

        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(events.is_empty(), "no connection pending yet");

        let _client = TcpStream::connect(addr).unwrap();
        poller.wait(2_000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn stream_read_write_readiness_and_level_trigger() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(&server, 1, Interest::BOTH).unwrap();

        let mut events = Vec::new();
        poller.wait(1_000, &mut events).unwrap();
        let ev = events.iter().find(|e| e.token == 1).expect("event");
        assert!(
            ev.writable && !ev.readable,
            "fresh socket is write-ready only"
        );

        client.write_all(b"ping").unwrap();
        poller.wait(2_000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        // level-triggered: unread bytes keep reporting readable
        poller.wait(2_000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let mut buf = [0u8; 4];
        let mut s = &server;
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // interest can be narrowed after registration
        poller.modify(&server, 1, Interest::READABLE).unwrap();
        poller.wait(0, &mut events).unwrap();
        assert!(!events.iter().any(|e| e.token == 1 && e.writable));

        poller.delete(&server).unwrap();
        client.write_all(b"more").unwrap();
        poller.wait(100, &mut events).unwrap();
        assert!(events.is_empty(), "deleted fds report nothing");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&server, 3, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller.wait(2_000, &mut events).unwrap();
        let ev = events.iter().find(|e| e.token == 3).expect("event");
        assert!(ev.hangup, "peer close must surface as hangup");
    }

    #[test]
    fn waker_interrupts_wait_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new().unwrap();
        poller.add(waker.as_ref(), 99, Interest::READABLE).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || w.wake());
        let mut events = Vec::new();
        poller.wait(5_000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        handle.join().unwrap();

        waker.drain();
        poller.wait(0, &mut events).unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
    }
}
