//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] and
//! [`prop_compose!`] macros, range / collection / sample / string
//! strategies, `any::<T>()`, the `prop_assert*` macros, and
//! [`ProptestConfig`].
//!
//! Semantics versus upstream: each `#[test]` inside [`proptest!`] runs
//! `cases` deterministic random cases (seeded from the test name and case
//! index, so failures reproduce across runs and machines). There is **no
//! shrinking** — a failing case reports its case index and panics with the
//! original assertion message. Strategies are simple uniform samplers, and
//! string "regex" strategies support only the `.{m,n}` shape the tests
//! use (anything else falls back to short random ASCII).

/// Deterministic test-case RNG (SplitMix64 core — streams are independent
/// per (test, case) pair).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from the test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // widening multiply; bias is < 2^-32 for the small bounds tests use
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of random values for one test argument.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy from a closure — the building block `prop_compose!`
    /// expands to.
    pub struct FnStrategy<F>(F);

    impl<F> FnStrategy<F> {
        pub fn new(f: F) -> FnStrategy<F> {
            FnStrategy(f)
        }
    }

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<F> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a "regex" pattern. Only the `.{m,n}` form is
    /// interpreted; other patterns yield short random ASCII strings.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (min_len, max_len) = parse_dot_repeat(self).unwrap_or((0, 16));
            let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
            // mixed pool: printable ASCII plus a few multi-byte chars so
            // parsers see non-ASCII input too
            const POOL: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '.', ',', '!', '(', ')', '&',
                '|', '<', '>', '=', '\'', '"', '_', 't', '1', '2', 'x', '§', 'π', '≤',
            ];
            (0..len)
                .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn dot_repeat_parses() {
            assert_eq!(parse_dot_repeat(".{0,60}"), Some((0, 60)));
            assert_eq!(parse_dot_repeat("[a-z]+"), None);
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Admissible length specifications for [`vec()`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Vector strategy: length from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    // SizeRange implementors above are all plain data; the box keeps the
    // public signature simple (mirrors upstream's `Into<SizeRange>`).
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_value(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary_value(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// Runner configuration (`cases` is the only knob the shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Asserts a condition inside a property test (panics — the shim has no
/// shrinking phase to feed a structured error into).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `#[test]` runs `cases` deterministic
/// random cases of its body with arguments drawn from the given
/// strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "[proptest shim] {} failed at case {}/{} (deterministic; re-run reproduces)",
                        stringify!($name),
                        case,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Declares a named composite strategy function, mirroring proptest's
/// `prop_compose!` (outer parameters, then strategy bindings, then a body
/// mapping drawn values to the result).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
                 ($($arg:ident in $strat:expr),+ $(,)?)
                 -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::TestRng| {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);
                )+
                $body
            })
        }
    };
}

pub mod prelude {
    /// Upstream re-exports the crate under the name `prop` so tests can
    /// say `prop::collection::vec(...)`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair(limit: usize)(a in 0usize..10, b in prop::collection::vec(0u32..5, 1..limit)) -> (usize, Vec<u32>) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..7, y in -2i32..=2, f in 0.5f64..1.5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn composed_strategies_work(p in pair(4), flag in any::<bool>()) {
            let (a, v) = p;
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5), "bad vec {v:?}");
            let _ = flag;
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,6}") {
            prop_assert!(s.chars().count() <= 6);
        }

        #[test]
        fn select_draws_members(v in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
