//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset Kamino actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, high-quality, and fully
//! deterministic for a given seed, which is all the pipeline requires
//! (determinism tests, statistical marginal checks, DP noise shaping).
//!
//! It is **not** the upstream `rand` crate: stream values differ, and no
//! cryptographic or OS entropy source exists here by design.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire's widening-multiply method
/// (debiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`0..n`, `0..=n`, float ranges).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state — the generator's *cursor*. Together
        /// with [`StdRng::from_state`] this lets model snapshots persist a
        /// session's RNG position so a reloaded session continues the exact
        /// sample stream the saved one would have produced. (A shim
        /// extension: upstream `rand` has no such accessor.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a saved cursor. The all-zero state is
        /// invalid for xoshiro and is replaced by the seed-expansion
        /// fallback constant, mirroring [`SeedableRng::seed_from_u64`].
        pub fn from_state(mut s: [u64; 4]) -> StdRng {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    // keep the trait importable even when only `shuffle` is used
    const _: fn(&mut dyn RngCore) = |_| {};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64_pub();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        // the all-zero state is coerced to a valid generator
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64_pub(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
