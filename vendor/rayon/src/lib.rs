//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the data-parallel API subset Kamino's hot paths use:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — indexed parallel map,
//! * `slice.par_chunks(n).map(f).collect::<Vec<_>>()` — chunked map,
//! * [`join`] — two-way fork-join,
//! * [`current_num_threads`] — worker count (`RAYON_NUM_THREADS` honored).
//!
//! Execution model: iterators are lazy until `collect`/`sum`, at which
//! point the input is split into one contiguous chunk per worker and run
//! under [`std::thread::scope`]. Results are written back **by index**, so
//! output order — and therefore every downstream computation — is
//! identical to the serial path regardless of thread count or scheduling.
//! With `RAYON_NUM_THREADS=1` (or one hardware thread) everything runs
//! inline on the caller thread. There is deliberately **no minimum input
//! length**: callers gate on estimated work before fanning out, and the
//! shim must not overrule them — ten candidates that each scan a
//! 2000-row prefix want threads as much as a thousand cheap ones.
//!
//! This is not upstream rayon: there is no work-stealing pool, and spawn
//! cost is paid per `collect` (~tens of µs). Kamino only routes
//! batch-sized work (hundreds of candidate scores, gradient microbatches)
//! through it, where that cost is noise.

use std::sync::OnceLock;

/// Number of worker threads parallel operations will use.
/// `RAYON_NUM_THREADS` (upstream rayon's variable) overrides the hardware
/// count; `1` forces serial execution everywhere.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join worker panicked"))
    })
}

/// Indexed parallel map over `0..len`: calls `f(i)` for every index and
/// returns the results in index order. The workhorse behind the iterator
/// facade; exposed for callers that want to avoid slice plumbing.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // No item-count floor here: callers gate on estimated *work* (a few
    // expensive items deserve threads as much as many cheap ones), and a
    // second floor in the shim would silently defeat those gates.
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = ci * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("rayon shim: worker skipped a slot"))
        .collect()
}

/// Lazy parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Lazy parallel iterator over non-overlapping sub-slices.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    size: usize,
}

/// A `map` stage pending execution.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<ParIter<'a, T>, F> {
    fn run(self) -> Vec<R> {
        let items = self.inner.items;
        let f = self.f;
        par_map_indexed(items.len(), |i| f(&items[i]))
    }

    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParMap<ParChunks<'a, T>, F> {
    fn run(self) -> Vec<R> {
        let items = self.inner.items;
        let size = self.inner.size.max(1);
        let n_chunks = items.len().div_ceil(size);
        let f = self.f;
        par_map_indexed(n_chunks, |ci| {
            let start = ci * size;
            let end = (start + size).min(items.len());
            f(&items[start..end])
        })
    }

    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Slice extension supplying `par_iter` / `par_chunks` (upstream:
/// `rayon::prelude::*`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        ParChunks { items: self, size }
    }
}

pub mod prelude {
    pub use crate::ParallelSlice;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, par_map_indexed};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_map_covers_everything() {
        let v: Vec<u64> = (0..101).collect();
        let sums: Vec<u64> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), (0..101).sum::<u64>());
        assert_eq!(sums[0], (0..10).sum::<u64>());
        assert_eq!(sums[10], 100);
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<u64> = (0..500).collect();
        let s: u64 = v.par_iter().map(|&x| x + 1).sum();
        assert_eq!(s, (1..=500).sum::<u64>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let v: Vec<u32> = vec![];
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        assert_eq!(par_map_indexed(3, |i| i), vec![0, 1, 2]);
    }
}
